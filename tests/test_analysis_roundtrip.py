"""Round-trip tests for every dataclass crossing the grid process
boundary (the contract RPR006 enforces): ``to_jsonable()`` must survive
``json.dumps``/``loads`` unchanged — no tuples, dataclasses, or other
shapes JSON would silently rewrite."""

import json

from repro.benchmark import run_scenario
from repro.benchmark.harness import (
    MultiPeerResult,
    PhaseTrace,
    StallDiagnostics,
    run_multipeer_startup,
)
from repro.grid.cells import GridCell
from repro.grid.executor import GridReport, run_grid
from repro.systems import build_system


def roundtrips(payload) -> bool:
    return json.loads(json.dumps(payload)) == payload


class TestHarnessResults:
    def test_scenario_result_roundtrips(self):
        result = run_scenario(build_system("pentium3"), 5, table_size=100, seed=5)
        assert roundtrips(result.to_jsonable())

    def test_scenario_result_with_series_roundtrips(self):
        result = run_scenario(build_system("pentium3"), 1, table_size=60, seed=5)
        payload = result.to_jsonable(include_series=True)
        assert roundtrips(payload)
        assert "cpu_series" in payload and "forwarding_series" in payload

    def test_phase_trace_roundtrips_with_stall(self):
        stall = StallDiagnostics(
            reason="livelock",
            virtual_time=3.5,
            inflight=4,
            packets_sent=10,
            packets_total=20,
            packets_completed=6,
            events_fired=123,
        )
        trace = PhaseTrace(3, 1.0, 3.5, 6, completed=False, stall=stall)
        payload = trace.to_jsonable()
        assert roundtrips(payload)
        assert payload["stall"]["reason"] == "livelock"

    def test_stall_diagnostics_roundtrip_preserves_every_field(self):
        stall = StallDiagnostics("deadlock", 1.0, 2, 3, 4, 5, 6)
        payload = stall.to_jsonable()
        assert roundtrips(payload)
        assert set(payload) == {
            "reason", "virtual_time", "inflight", "packets_sent",
            "packets_total", "packets_completed", "events_fired",
        }

    def test_multipeer_result_roundtrips(self):
        result = run_multipeer_startup(
            build_system("pentium3"), peer_count=2, table_size=60, seed=5
        )
        payload = result.to_jsonable()
        assert roundtrips(payload)
        assert payload["peer_count"] == 2
        assert payload["transactions_per_second"] == result.transactions_per_second


class TestGridResults:
    def test_grid_cell_roundtrips_to_its_spec(self):
        cell = GridCell(5, "xeon", 42, 150)
        payload = cell.to_jsonable()
        assert roundtrips(payload)
        assert payload == cell.spec()
        assert GridCell.from_spec(json.loads(json.dumps(payload))) == cell

    def test_grid_report_roundtrips(self):
        cells = [GridCell(1, "pentium3", 5, 80), GridCell(5, "pentium3", 5, 80)]
        report = run_grid(cells, workers=1)
        payload = report.to_jsonable()
        assert roundtrips(payload)
        assert payload["executed"] == 2
        assert list(payload["results"]) == [cell.cell_id for cell in cells]

    def test_empty_grid_report_roundtrips(self):
        payload = GridReport(workers=3).to_jsonable()
        assert roundtrips(payload)
        assert payload == {
            "workers": 3,
            "hits": 0,
            "executed": 0,
            "resumed": 0,
            "retries": 0,
            "timeouts": 0,
            "worker_crashes": 0,
            "results": {},
            "failures": {},
            "recovered": {},
            "uncached": {},
        }
