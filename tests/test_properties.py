"""Property-based tests (hypothesis) for the core data structures:
codecs round-trip, tries agree with a brute-force reference, checksums
stay consistent under incremental update, and the decision process is
well-behaved.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import (
    AsPath,
    AsPathSegment,
    Origin,
    PathAttributes,
    SegmentType,
    decode_attributes,
    encode_attributes,
)
from repro.bgp.decision import Candidate, DecisionProcess, PeerInfo
from repro.bgp.messages import UpdateMessage, decode_message, decode_nlri, encode_nlri
from repro.forwarding.trie import BinaryTrie, CompressedTrie
from repro.net.addr import IPv4Address, Prefix
from repro.net.checksum import incremental_checksum_update, internet_checksum
from repro.net.packet import IPv4Packet

# -- strategies ------------------------------------------------------------

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPv4Address)


@st.composite
def prefixes(draw):
    length = draw(st.integers(min_value=0, max_value=32))
    value = draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
    return Prefix.from_address(IPv4Address(value), length)


asns = st.integers(min_value=1, max_value=0xFFFF)


@st.composite
def as_paths(draw):
    segments = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        kind = draw(st.sampled_from([SegmentType.AS_SEQUENCE, SegmentType.AS_SET]))
        members = tuple(draw(st.lists(asns, min_size=1, max_size=8)))
        segments.append(AsPathSegment(kind, members))
    return AsPath(tuple(segments))


@st.composite
def path_attributes(draw):
    return PathAttributes(
        origin=draw(st.sampled_from(list(Origin))),
        as_path=draw(as_paths()),
        next_hop=IPv4Address(draw(st.integers(min_value=1, max_value=0xFFFFFFFE))),
        med=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=0xFFFFFFFF))),
        local_pref=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=0xFFFFFFFF))),
        atomic_aggregate=draw(st.booleans()),
        communities=tuple(
            draw(st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=4))
        ),
    )


# -- net -----------------------------------------------------------------------


class TestAddressProperties:
    @given(addresses)
    def test_address_str_parse_round_trip(self, address):
        assert IPv4Address.parse(str(address)) == address

    @given(addresses)
    def test_address_bytes_round_trip(self, address):
        assert IPv4Address.from_bytes(address.to_bytes()) == address

    @given(prefixes())
    def test_prefix_str_parse_round_trip(self, prefix):
        assert Prefix.parse(str(prefix)) == prefix

    @given(prefixes())
    def test_prefix_contains_its_bounds(self, prefix):
        assert prefix.contains(prefix.first_address())
        assert prefix.contains(prefix.last_address())

    @given(prefixes(), addresses)
    def test_contains_matches_cover_definition(self, prefix, address):
        host = Prefix.from_address(address, 32)
        assert prefix.contains(address) == prefix.covers(host)

    @given(prefixes())
    def test_bits_length(self, prefix):
        assert len(prefix.bits()) == prefix.length


class TestChecksumProperties:
    @given(st.binary(min_size=0, max_size=128))
    def test_checksum_in_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF

    @given(st.binary(min_size=2, max_size=64).filter(lambda d: len(d) % 2 == 0),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_incremental_matches_full(self, data, new_word):
        """Replacing any aligned 16-bit word: incremental == recompute,
        up to the one's-complement ±0 representation (unreachable for
        real IPv4 headers; see the docstring in repro.net.checksum)."""
        checksum = internet_checksum(data)
        old_word = (data[0] << 8) | data[1]
        mutated = bytes(new_word.to_bytes(2, "big")) + data[2:]
        incremental = incremental_checksum_update(checksum, old_word, new_word)
        full = internet_checksum(mutated)
        assert incremental == full or {incremental, full} == {0x0000, 0xFFFF}

    @given(addresses, addresses, st.integers(min_value=2, max_value=255),
           st.binary(max_size=32))
    def test_packet_round_trip(self, src, dst, ttl, payload):
        packet = IPv4Packet(source=src, destination=dst, ttl=ttl, payload=payload)
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.source == src and decoded.destination == dst
        assert decoded.ttl == ttl and decoded.payload == payload
        assert decoded.header_checksum_ok()


# -- bgp codec ---------------------------------------------------------------------


class TestCodecProperties:
    @given(st.lists(prefixes(), max_size=30))
    def test_nlri_round_trip(self, prefix_list):
        assert decode_nlri(encode_nlri(prefix_list)) == prefix_list

    @given(as_paths())
    def test_as_path_round_trip(self, path):
        assert AsPath.decode(path.encode()) == path

    @given(as_paths(), asns, st.integers(min_value=1, max_value=5))
    def test_prepend_extends_all_asns(self, path, asn, count):
        prepended = path.prepend(asn, count)
        assert prepended.all_asns() == (asn,) * count + path.all_asns()
        assert prepended.contains(asn)

    @given(path_attributes())
    def test_attributes_round_trip(self, attrs):
        assert decode_attributes(encode_attributes(attrs)) == attrs

    @given(st.lists(prefixes(), min_size=1, max_size=20), path_attributes(),
           st.lists(prefixes(), max_size=20))
    def test_update_round_trip(self, nlri, attrs, withdrawn):
        message = UpdateMessage(
            withdrawn=tuple(withdrawn), attributes=attrs, nlri=tuple(nlri)
        )
        assert decode_message(message.encode()) == message

    @given(st.lists(prefixes(), min_size=1, max_size=20), path_attributes())
    def test_transaction_count_matches_metric_definition(self, nlri, attrs):
        message = UpdateMessage(attributes=attrs, nlri=tuple(nlri))
        assert message.transaction_count() == len(nlri)


# -- tries ---------------------------------------------------------------------------


def brute_force_lookup(routes: dict, address: int):
    best = None
    for prefix, value in routes.items():
        if prefix.contains(address):
            if best is None or prefix.length > best[0].length:
                best = (prefix, value)
    return best


class TestTrieProperties:
    @settings(max_examples=50)
    @given(st.dictionaries(prefixes(), st.integers(), max_size=40),
           st.lists(addresses, max_size=20))
    def test_lookup_matches_brute_force(self, routes, probes):
        for trie_class in (BinaryTrie, CompressedTrie):
            trie = trie_class()
            for prefix, value in routes.items():
                trie.insert(prefix, value)
            for probe in probes:
                assert trie.lookup(probe) == brute_force_lookup(routes, int(probe)), \
                    (trie_class.__name__, str(probe))

    @settings(max_examples=50)
    @given(st.dictionaries(prefixes(), st.integers(), max_size=30))
    def test_items_returns_inserted_set(self, routes):
        for trie_class in (BinaryTrie, CompressedTrie):
            trie = trie_class()
            for prefix, value in routes.items():
                trie.insert(prefix, value)
            assert dict(trie.items()) == routes
            assert len(trie) == len(routes)

    @settings(max_examples=50)
    @given(st.dictionaries(prefixes(), st.integers(), min_size=1, max_size=30),
           st.data())
    def test_remove_preserves_other_routes(self, routes, data):
        victim = data.draw(st.sampled_from(sorted(routes)))
        for trie_class in (BinaryTrie, CompressedTrie):
            trie = trie_class()
            for prefix, value in routes.items():
                trie.insert(prefix, value)
            assert trie.remove(victim)
            remaining = {p: v for p, v in routes.items() if p != victim}
            assert dict(trie.items()) == remaining

    @settings(max_examples=30)
    @given(st.lists(st.tuples(prefixes(), st.booleans()), max_size=60))
    def test_interleaved_insert_remove_equivalence(self, operations):
        binary, compressed, reference = BinaryTrie(), CompressedTrie(), {}
        for prefix, is_insert in operations:
            if is_insert:
                assert binary.insert(prefix, 1) == compressed.insert(prefix, 1)
                reference[prefix] = 1
            else:
                assert binary.remove(prefix) == compressed.remove(prefix)
                reference.pop(prefix, None)
        assert dict(binary.items()) == reference
        assert dict(compressed.items()) == reference


# -- decision process ---------------------------------------------------------------------


@st.composite
def candidates(draw):
    attrs = draw(path_attributes())
    index = draw(st.integers(min_value=0, max_value=9))
    peer = PeerInfo(
        peer_id=f"peer{index}",
        asn=draw(asns),
        address=IPv4Address(draw(st.integers(min_value=1, max_value=0xFFFFFFFE))),
        bgp_identifier=IPv4Address(draw(st.integers(min_value=1, max_value=0xFFFFFFFE))),
        is_ebgp=draw(st.booleans()),
    )
    return Candidate(attrs, peer)


class TestDecisionProperties:
    @given(st.lists(candidates(), min_size=1, max_size=8))
    def test_selected_is_a_candidate(self, candidate_list):
        best = DecisionProcess().select(candidate_list)
        assert best in candidate_list

    @given(st.lists(candidates(), min_size=1, max_size=6))
    def test_best_beats_every_candidate_pairwise(self, candidate_list):
        """The winner is never strictly dominated in a direct comparison."""
        process = DecisionProcess()
        best = process.select(candidate_list)
        # Scanning order dependence is possible with MED non-transitivity,
        # but the winner must at least defeat each rival one-on-one from
        # its own position — preference is asymmetric.
        for rival in candidate_list:
            if rival is best:
                continue
            if process.prefer(best, rival) is not best:
                # MED cycles are legal; but then the reverse comparison
                # must be consistent (prefer is a function).
                assert process.prefer(best, rival) is rival

    @given(candidates(), candidates())
    def test_prefer_is_deterministic_function(self, a, b):
        process = DecisionProcess()
        assert process.prefer(a, b) is process.prefer(a, b)

    @given(candidates())
    def test_self_comparison_stable(self, candidate):
        assert DecisionProcess().prefer(candidate, candidate) is candidate
