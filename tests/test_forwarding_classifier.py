"""Tests for the flow classifiers: unit behaviour + engine equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forwarding.classifier import (
    FlowKey,
    FlowRule,
    LinearClassifier,
    TupleSpaceClassifier,
)
from repro.net.addr import IPv4Address, Prefix
from repro.net.packet import IPv4Packet

WEB = FlowRule("web", priority=10, destination=Prefix.parse("192.0.2.0/24"),
               protocol=6, destination_port=80)
DNS = FlowRule("dns", priority=10, protocol=17, destination_port=53)
BLOCK_NET = FlowRule("block-net", priority=20, source=Prefix.parse("203.0.113.0/24"))
DEFAULT = FlowRule("default", priority=0)


def key(src="8.8.8.8", dst="192.0.2.1", proto=6, sport=1234, dport=80):
    return FlowKey(IPv4Address.parse(src), IPv4Address.parse(dst), proto, sport, dport)


@pytest.fixture(params=[LinearClassifier, TupleSpaceClassifier],
                ids=["linear", "tuple-space"])
def classifier(request):
    engine = request.param()
    for rule in (WEB, DNS, BLOCK_NET, DEFAULT):
        engine.add_rule(rule)
    return engine


class TestClassification:
    def test_exact_five_tuple_match(self, classifier):
        assert classifier.classify(key()) is WEB

    def test_wildcard_fields(self, classifier):
        assert classifier.classify(key(proto=17, dport=53)) is DNS

    def test_priority_wins_over_specificity(self, classifier):
        # BLOCK_NET (prio 20) beats WEB (prio 10) even though WEB is
        # more specific.
        assert classifier.classify(key(src="203.0.113.9")) is BLOCK_NET

    def test_default_rule_catches_rest(self, classifier):
        assert classifier.classify(key(dst="198.51.100.1", proto=47, dport=0)) is DEFAULT

    def test_no_match_without_default(self):
        for engine_class in (LinearClassifier, TupleSpaceClassifier):
            engine = engine_class()
            engine.add_rule(WEB)
            assert engine.classify(key(proto=17)) is None

    def test_port_mismatch(self, classifier):
        result = classifier.classify(key(dport=443))
        assert result in (DEFAULT,)

    def test_remove_rule(self, classifier):
        assert classifier.remove_rule("web") is True
        assert classifier.classify(key()) is DEFAULT
        assert classifier.remove_rule("web") is False

    def test_len_and_rules(self, classifier):
        assert len(classifier) == 4
        assert {rule.name for rule in classifier.rules()} == {
            "web", "dns", "block-net", "default"
        }

    def test_tie_breaks_to_earliest_added(self):
        first = FlowRule("first", priority=5, protocol=6)
        second = FlowRule("second", priority=5, protocol=6)
        for engine_class in (LinearClassifier, TupleSpaceClassifier):
            engine = engine_class()
            engine.add_rule(first)
            engine.add_rule(second)
            assert engine.classify(key()).name == "first"


class TestFlowKeyExtraction:
    def test_tcp_ports_from_payload(self):
        packet = IPv4Packet(
            source=IPv4Address.parse("8.8.8.8"),
            destination=IPv4Address.parse("192.0.2.1"),
            protocol=6,
            payload=(1234).to_bytes(2, "big") + (80).to_bytes(2, "big") + b"rest",
        )
        extracted = FlowKey.from_packet(packet)
        assert extracted.source_port == 1234
        assert extracted.destination_port == 80

    def test_non_tcp_udp_has_zero_ports(self):
        packet = IPv4Packet(
            source=IPv4Address.parse("8.8.8.8"),
            destination=IPv4Address.parse("192.0.2.1"),
            protocol=1,  # ICMP
            payload=b"\x08\x00\x00\x00",
        )
        extracted = FlowKey.from_packet(packet)
        assert extracted.source_port == 0
        assert extracted.destination_port == 0

    def test_short_payload_safe(self):
        packet = IPv4Packet(
            source=IPv4Address.parse("8.8.8.8"),
            destination=IPv4Address.parse("192.0.2.1"),
            protocol=6,
            payload=b"\x01",
        )
        assert FlowKey.from_packet(packet).source_port == 0


class TestTupleSpaceSpecifics:
    def test_tuple_count(self):
        engine = TupleSpaceClassifier()
        engine.add_rule(WEB)
        engine.add_rule(DNS)
        engine.add_rule(DEFAULT)
        # WEB: (dst/24, proto, dport); DNS: (proto, dport); DEFAULT: all-wild.
        assert engine.tuple_count == 3

    def test_same_spec_shares_tuple(self):
        engine = TupleSpaceClassifier()
        engine.add_rule(FlowRule("a", 1, destination=Prefix.parse("10.0.0.0/8")))
        engine.add_rule(FlowRule("b", 2, destination=Prefix.parse("11.0.0.0/8")))
        assert engine.tuple_count == 1

    def test_probe_count_bounded_by_tuples(self):
        engine = TupleSpaceClassifier()
        for rule in (WEB, DNS, BLOCK_NET, DEFAULT):
            engine.add_rule(rule)
        engine.probes = 0
        engine.classify(key())
        assert engine.probes == engine.tuple_count


# -- property equivalence ---------------------------------------------------

prefixes_or_none = st.one_of(
    st.none(),
    st.tuples(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=32),
    ).map(lambda t: Prefix.from_address(IPv4Address(t[0]), t[1])),
)

rules = st.builds(
    FlowRule,
    name=st.uuids().map(str),
    priority=st.integers(min_value=0, max_value=30),
    source=prefixes_or_none,
    destination=prefixes_or_none,
    protocol=st.one_of(st.none(), st.sampled_from([1, 6, 17])),
    source_port=st.one_of(st.none(), st.integers(min_value=0, max_value=1024)),
    destination_port=st.one_of(st.none(), st.integers(min_value=0, max_value=1024)),
)

keys = st.builds(
    FlowKey,
    source=st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPv4Address),
    destination=st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPv4Address),
    protocol=st.sampled_from([1, 6, 17]),
    source_port=st.integers(min_value=0, max_value=1024),
    destination_port=st.integers(min_value=0, max_value=1024),
)


class TestEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(rules, max_size=15), st.lists(keys, max_size=10))
    def test_engines_agree(self, rule_list, key_list):
        linear, tuple_space = LinearClassifier(), TupleSpaceClassifier()
        for rule in rule_list:
            linear.add_rule(rule)
            tuple_space.add_rule(rule)
        for probe in key_list:
            a = linear.classify(probe)
            b = tuple_space.classify(probe)
            assert (a is None) == (b is None)
            if a is not None:
                # Same priority; possibly different rules only if both
                # match with identical (priority, insertion order) —
                # impossible, so they must be the same rule.
                assert a is b
