"""The profile views: top table, phase attribution, folded stacks.

``attribute_phases`` must conserve CPU: the per-(phase, task) pieces sum
exactly to the monitor's totals, with anything outside every phase span
booked to ``(unphased)``. ``folded_stacks`` must report *self* time —
a parent tiled exactly by its children contributes zero.
"""

import math

import pytest

from repro.telemetry.profile import (
    UNPHASED,
    attribute_phases,
    build_profile,
    folded_stacks,
    top_table,
)
from repro.telemetry.spans import Span


class FakeCpuMonitor:
    """The slice of the CpuMonitor surface the profile functions read."""

    def __init__(self, bucket_width, usage):
        self.bucket_width = bucket_width
        self._usage = usage

    def bucket_usage(self):
        return {bucket: dict(tasks) for bucket, tasks in self._usage.items()}

    def task_names(self):
        names = set()
        for tasks in self._usage.values():
            names.update(tasks)
        return sorted(names)

    def total_cpu_seconds(self, name):
        return math.fsum(
            tasks.get(name, 0.0) for tasks in self._usage.values()
        )


def phase_span(span_id, name, start, end):
    return Span(
        span_id=span_id, parent_id=None, name=name, category="phase",
        start=start, end=end,
    )


def child_span(span_id, parent, name, start, end):
    return Span(
        span_id=span_id, parent_id=parent, name=name, category="",
        start=start, end=end,
    )


class TestTopTable:
    def test_rows_sorted_by_cpu_then_name(self):
        monitor = FakeCpuMonitor(
            1.0, {0: {"bgpd": 0.4, "os": 0.1}, 1: {"bgpd": 0.2, "fib": 0.3}}
        )
        rows = top_table(monitor)
        assert [row.task for row in rows] == ["bgpd", "fib", "os"]
        assert rows[0].cpu_seconds == pytest.approx(0.6)
        assert math.fsum(row.share for row in rows) == pytest.approx(1.0)

    def test_empty_monitor_gives_empty_table(self):
        assert top_table(FakeCpuMonitor(1.0, {})) == []


class TestAttributePhases:
    def test_bucket_inside_one_phase_books_fully_to_it(self):
        monitor = FakeCpuMonitor(1.0, {2: {"bgpd": 0.7}})
        phases = [phase_span(1, "phase1", 0.0, 10.0)]
        assert attribute_phases(monitor, phases) == {
            ("phase1", "bgpd"): pytest.approx(0.7)
        }

    def test_bucket_split_across_phase_boundary(self):
        # Bucket [2, 3) straddles the phase1/phase2 boundary at 2.5.
        monitor = FakeCpuMonitor(1.0, {2: {"bgpd": 0.8}})
        phases = [
            phase_span(1, "phase1", 0.0, 2.5),
            phase_span(2, "phase2", 2.5, 10.0),
        ]
        parts = attribute_phases(monitor, phases)
        assert parts[("phase1", "bgpd")] == pytest.approx(0.4)
        assert parts[("phase2", "bgpd")] == pytest.approx(0.4)

    def test_cpu_outside_every_phase_books_to_unphased(self):
        monitor = FakeCpuMonitor(1.0, {0: {"bgpd": 0.5}, 9: {"bgpd": 0.3}})
        phases = [phase_span(1, "phase1", 0.0, 1.0)]
        parts = attribute_phases(monitor, phases)
        assert parts[("phase1", "bgpd")] == pytest.approx(0.5)
        assert parts[(UNPHASED, "bgpd")] == pytest.approx(0.3)

    def test_attribution_conserves_monitor_totals(self):
        monitor = FakeCpuMonitor(
            0.5,
            {
                0: {"bgpd": 0.11, "os": 0.02},
                1: {"bgpd": 0.23},
                3: {"bgpd": 0.05, "fib": 0.17},
                7: {"os": 0.4},
            },
        )
        phases = [
            phase_span(1, "phase1", 0.1, 0.9),
            phase_span(2, "phase2", 0.9, 2.0),
        ]
        parts = attribute_phases(monitor, phases)
        for task in monitor.task_names():
            attributed = math.fsum(
                seconds for (_, name), seconds in parts.items() if name == task
            )
            assert attributed == pytest.approx(monitor.total_cpu_seconds(task))

    def test_no_spans_books_everything_unphased(self):
        monitor = FakeCpuMonitor(1.0, {0: {"bgpd": 1.0}})
        assert attribute_phases(monitor, []) == {
            (UNPHASED, "bgpd"): pytest.approx(1.0)
        }


class TestFoldedStacks:
    def test_self_time_excludes_children(self):
        spans = [
            phase_span(1, "phase1", 0.0, 10.0),
            child_span(2, 1, "packet", 1.0, 4.0),
            child_span(3, 2, "update", 2.0, 3.0),
        ]
        folded = folded_stacks(spans)
        assert folded["phase1"] == pytest.approx(7.0)
        assert folded["phase1;packet"] == pytest.approx(2.0)
        assert folded["phase1;packet;update"] == pytest.approx(1.0)

    def test_exactly_tiled_parent_has_zero_self_time(self):
        spans = [
            phase_span(1, "phase1", 0.0, 2.0),
            child_span(2, 1, "packet", 0.0, 1.0),
            child_span(3, 1, "packet", 1.0, 2.0),
        ]
        folded = folded_stacks(spans)
        assert folded["phase1"] == 0.0
        assert folded["phase1;packet"] == pytest.approx(2.0)

    def test_same_path_aggregates(self):
        spans = [
            phase_span(1, "phase1", 0.0, 10.0),
            child_span(2, 1, "packet", 0.0, 1.0),
            child_span(3, 1, "packet", 2.0, 5.0),
        ]
        assert folded_stacks(spans)["phase1;packet"] == pytest.approx(4.0)


class TestProfileReport:
    def test_build_and_render(self):
        monitor = FakeCpuMonitor(1.0, {0: {"bgpd": 0.6, "os": 0.2}})
        spans = [phase_span(1, "phase1", 0.0, 1.0)]
        report = build_profile(monitor, spans)
        top = report.render_top()
        assert "bgpd" in top and "75.0%" in top
        assert report.render_flame() == "phase1 1.000000000"
        payload = report.to_jsonable()
        assert payload["top"][0]["task"] == "bgpd"
        assert payload["phases"][0]["phase"] == "phase1"

    def test_empty_report_renders_placeholder(self):
        report = build_profile(FakeCpuMonitor(1.0, {}), [])
        assert report.render_top() == "(no CPU activity)"
