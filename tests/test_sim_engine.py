"""Unit tests for the discrete-event core."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: log.append(n))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_callback_schedules_more_events(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        sim.run()
        assert log == []
        assert handle.cancelled

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(5.0, lambda: log.append(5))
        sim.run(until=3.0)
        assert log == [1]
        assert sim.now == 3.0
        sim.run()
        assert log == [1, 5]

    def test_fire_due_single_step(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(2.0, lambda: log.append(2))
        assert sim.fire_due() == 1
        assert log == [1]

    def test_fire_due_until(self):
        sim = Simulator()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: log.append(t))
        assert sim.fire_due(until=2.5) == 2
        assert sim.now == 2.5

    def test_advance_to(self):
        sim = Simulator()
        sim.advance_to(7.0)
        assert sim.now == 7.0
        with pytest.raises(ValueError):
            sim.advance_to(6.0)

    def test_pending_count(self):
        sim = Simulator()
        a = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        a.cancel()
        assert sim.pending() == 1

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t), lambda: None)
        sim.run()
        assert sim.events_fired == 5


class TestReschedule:
    def test_reschedule_pending_event_moves_it(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append(sim.now))
        handle.reschedule(5.0)
        sim.run()
        assert log == [5.0]

    def test_reschedule_after_firing_rearms(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append(sim.now))
        sim.run()
        assert not handle.active
        handle.reschedule(2.0)
        assert handle.active
        sim.run()
        assert log == [1.0, 3.0]

    def test_reschedule_reuses_heap_entry_after_pop(self):
        # The satellite goal: a periodic timer re-arming from its own
        # callback must not allocate a new heap entry per period.
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        entry = handle._event
        sim.run()
        handle.reschedule(1.0)
        assert handle._event is entry

    def test_periodic_timer_from_own_callback(self):
        sim = Simulator()
        log = []
        handle = None

        def tick():
            log.append(sim.now)
            if len(log) < 4:
                handle.reschedule(1.0)

        handle = sim.schedule(1.0, tick)
        entry = handle._event
        sim.run()
        assert log == [1.0, 2.0, 3.0, 4.0]
        assert handle._event is entry

    def test_reschedule_cancelled_event_revives_it(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append(sim.now))
        handle.cancel()
        handle.reschedule(2.0)
        sim.run()
        assert log == [2.0]

    def test_reschedule_negative_delay_rejected(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        with pytest.raises(ValueError):
            handle.reschedule(-0.5)

    def test_active_property_lifecycle(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.active
        handle.cancel()
        assert not handle.active
        handle.reschedule(1.0)
        assert handle.active
        sim.run()
        assert not handle.active


class TestDaemonEvents:
    def test_daemon_alone_does_not_keep_sim_alive(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("d"), daemon=True)
        assert sim.peek_time() is None
        sim.run()
        assert log == []
        assert sim.now == 0.0

    def test_daemon_fires_while_real_work_pending(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("daemon"), daemon=True)
        sim.schedule(2.0, lambda: log.append("real"))
        sim.run()
        assert log == ["daemon", "real"]

    def test_run_stops_once_only_daemons_remain(self):
        sim = Simulator()
        log = []
        handle = None

        def watchdog():
            log.append(sim.now)
            handle.reschedule(1.0)

        handle = sim.schedule(1.0, watchdog, daemon=True)
        sim.schedule(2.5, lambda: log.append("work"))
        sim.run()
        # The self-rescheduling daemon ticked alongside the real event,
        # then stopped holding the simulation open.
        assert log == [1.0, 2.0, "work"]
        assert sim.now == 2.5

    def test_reschedule_preserves_daemon_flag(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("d"), daemon=True)
        handle.reschedule(3.0)
        sim.run()
        assert log == []
        sim.schedule(5.0, lambda: log.append("real"))
        sim.run()
        assert log == ["d", "real"]

    def test_cancelled_daemon_stays_quiet(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("d"), daemon=True)
        handle.cancel()
        sim.schedule(2.0, lambda: log.append("real"))
        sim.run()
        assert log == ["real"]

    def test_cancelling_real_event_leaves_daemons_dormant(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("d"), daemon=True)
        real = sim.schedule(2.0, lambda: log.append("real"))
        real.cancel()
        assert sim.peek_time() is None
        sim.run()
        assert log == []
