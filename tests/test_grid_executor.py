"""Determinism and caching of the sharded grid executor.

The two load-bearing guarantees: a pooled run is byte-identical to a
serial run of the same cells, and the content-addressed cache serves
repeat runs while a source-tree fingerprint change invalidates it.
"""

import json

import pytest

from repro.grid import GridCache, GridCell, enumerate_grid, run_grid, source_fingerprint

CELLS = enumerate_grid(
    scenarios=[1, 5], platforms=["pentium3", "cisco"], seeds=[7], table_sizes=[100]
)


class TestDeterminism:
    def test_pooled_run_byte_identical_to_serial(self):
        serial = run_grid(CELLS, workers=1)
        pooled = run_grid(CELLS, workers=2)
        assert serial.to_json() == pooled.to_json()

    def test_results_keyed_in_enumeration_order(self):
        report = run_grid(CELLS, workers=2)
        assert list(report.results) == [cell.cell_id for cell in CELLS]

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_grid(CELLS, workers=0)


class TestCache:
    def test_warm_run_is_all_hits(self, tmp_path):
        cache = GridCache(tmp_path / "cache", fingerprint="fp")
        cold = run_grid(CELLS, workers=1, cache=cache)
        assert cold.executed == len(CELLS) and cold.hits == 0

        warm_cache = GridCache(tmp_path / "cache", fingerprint="fp")
        warm = run_grid(CELLS, workers=1, cache=warm_cache)
        assert warm.executed == 0
        assert warm.hits == len(CELLS)
        assert warm.hit_rate == 1.0
        assert warm.to_json() == cold.to_json()

    def test_fingerprint_change_invalidates_cells(self, tmp_path):
        cache = GridCache(tmp_path / "cache", fingerprint="before")
        run_grid(CELLS, workers=1, cache=cache)

        stale = GridCache(tmp_path / "cache", fingerprint="after")
        rerun = run_grid(CELLS, workers=1, cache=stale)
        assert rerun.hits == 0
        assert rerun.executed == len(CELLS)

    def test_refresh_bypasses_hits_but_rewrites_entries(self, tmp_path):
        cache = GridCache(tmp_path / "cache", fingerprint="fp")
        run_grid(CELLS, workers=1, cache=cache)
        refreshed = run_grid(CELLS, workers=1, cache=cache, refresh=True)
        assert refreshed.hits == 0 and refreshed.executed == len(CELLS)
        warm = run_grid(CELLS, workers=1, cache=GridCache(tmp_path / "cache", "fp"))
        assert warm.hits == len(CELLS)

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = GridCache(tmp_path / "cache", fingerprint="fp")
        cell = CELLS[0]
        cache.put(cell, {"transactions": 1})
        cache.path_for(cell).write_text("{not json")
        assert cache.get(cell) is None

    def test_entry_is_self_describing(self, tmp_path):
        cache = GridCache(tmp_path / "cache", fingerprint="fp")
        cell = CELLS[0]
        path = cache.put(cell, {"transactions": 1})
        entry = json.loads(path.read_text())
        assert entry["cell"] == cell.spec()
        assert entry["fingerprint"] == "fp"

    def test_progress_callback_reports_cache_state(self, tmp_path):
        cache = GridCache(tmp_path / "cache", fingerprint="fp")
        seen = []
        run_grid(CELLS[:1], cache=cache, progress=lambda c, hit: seen.append((c, hit)))
        run_grid(CELLS[:1], cache=cache, progress=lambda c, hit: seen.append((c, hit)))
        assert seen == [(CELLS[0].cell_id, False), (CELLS[0].cell_id, True)]


class TestSourceFingerprint:
    def test_changes_when_a_source_file_changes(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "a.py").write_text("x = 1\n")
        (root / "b.py").write_text("y = 2\n")
        before = source_fingerprint(root)
        (root / "a.py").write_text("x = 3\n")
        assert source_fingerprint(root) != before

    def test_changes_when_a_file_is_added_or_renamed(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "a.py").write_text("x = 1\n")
        before = source_fingerprint(root)
        (root / "c.py").write_text("z = 1\n")
        added = source_fingerprint(root)
        assert added != before
        (root / "c.py").rename(root / "d.py")
        assert source_fingerprint(root) != added

    def test_default_digests_the_live_repro_tree(self):
        live = source_fingerprint()
        assert len(live) == 64
        assert live == source_fingerprint()

    def test_live_fingerprint_keys_the_default_cache(self, tmp_path):
        cache = GridCache(tmp_path / "cache")
        assert cache.fingerprint == source_fingerprint()
        cell = GridCell(1, "xeon", 42, 100)
        assert cache.path_for(cell).name == f"{cell.key(cache.fingerprint)}.json"
