"""Unit tests for the BGP message codec and stream framing."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.errors import BgpError, ErrorCode, HeaderSubcode
from repro.bgp.messages import (
    HEADER_LEN,
    MARKER,
    MAX_MESSAGE_LEN,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    clear_prefix_cache,
    decode_message,
    decode_nlri,
    encode_nlri,
    iter_messages,
)
from repro.net.addr import IPv4Address, Prefix

NH = IPv4Address.parse("10.0.0.1")
ATTRS = PathAttributes(as_path=AsPath.from_asns([65001]), next_hop=NH)


class TestNlri:
    def test_round_trip_mixed_lengths(self):
        prefixes = [
            Prefix.parse("0.0.0.0/0"),
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.128.0.0/9"),
            Prefix.parse("192.0.2.0/24"),
            Prefix.parse("192.0.2.1/32"),
        ]
        assert decode_nlri(encode_nlri(prefixes)) == prefixes

    def test_minimal_byte_packing(self):
        # /8 needs 1 byte, /24 needs 3, /32 needs 4, /0 needs 0.
        assert len(encode_nlri([Prefix.parse("10.0.0.0/8")])) == 2
        assert len(encode_nlri([Prefix.parse("192.0.2.0/24")])) == 4
        assert len(encode_nlri([Prefix.parse("192.0.2.1/32")])) == 5
        assert len(encode_nlri([Prefix.parse("0.0.0.0/0")])) == 1

    def test_decode_rejects_length_over_32(self):
        with pytest.raises(BgpError):
            decode_nlri(b"\x21\x0a\x00\x00\x00\x01")

    def test_decode_rejects_truncation(self):
        with pytest.raises(BgpError):
            decode_nlri(b"\x18\x0a\x00")

    def test_decode_rejects_host_bits(self):
        # /8 prefix with bits beyond the mask set in its single byte? Not
        # possible in one byte; use /9 with low bit of second byte set.
        with pytest.raises(BgpError):
            decode_nlri(b"\x09\x0a\x40")


class TestOpenMessage:
    def test_round_trip(self):
        msg = OpenMessage(65001, 90, IPv4Address.parse("1.2.3.4"), b"\x01\x02")
        decoded = decode_message(msg.encode())
        assert decoded == msg

    def test_hold_time_zero_allowed(self):
        msg = OpenMessage(65001, 0, IPv4Address.parse("1.2.3.4"))
        assert decode_message(msg.encode()).hold_time == 0

    def test_rejects_hold_time_one_and_two(self):
        for hold in (1, 2):
            wire = OpenMessage(65001, hold, IPv4Address.parse("1.2.3.4")).encode()
            with pytest.raises(BgpError):
                decode_message(wire)

    def test_rejects_as_zero(self):
        wire = bytearray(OpenMessage(65001, 90, IPv4Address.parse("1.2.3.4")).encode())
        wire[HEADER_LEN + 1 : HEADER_LEN + 3] = b"\x00\x00"
        with pytest.raises(BgpError):
            decode_message(bytes(wire))

    def test_rejects_identifier_zero(self):
        wire = bytearray(OpenMessage(65001, 90, IPv4Address.parse("1.2.3.4")).encode())
        wire[HEADER_LEN + 5 : HEADER_LEN + 9] = b"\x00" * 4
        with pytest.raises(BgpError):
            decode_message(bytes(wire))

    def test_rejects_wrong_version(self):
        wire = bytearray(OpenMessage(65001, 90, IPv4Address.parse("1.2.3.4")).encode())
        wire[HEADER_LEN] = 3
        with pytest.raises(BgpError):
            decode_message(bytes(wire))

    def test_rejects_optional_parameter_mismatch(self):
        wire = bytearray(OpenMessage(65001, 90, IPv4Address.parse("1.2.3.4")).encode())
        wire[HEADER_LEN + 9] = 5  # claims 5 bytes of options, has none
        with pytest.raises(BgpError):
            decode_message(bytes(wire))

    def test_encode_validates_asn(self):
        with pytest.raises(ValueError):
            OpenMessage(0, 90, IPv4Address.parse("1.2.3.4")).encode()
        with pytest.raises(ValueError):
            OpenMessage(70000, 90, IPv4Address.parse("1.2.3.4")).encode()


class TestUpdateMessage:
    def test_announce_round_trip(self):
        msg = UpdateMessage(
            attributes=ATTRS,
            nlri=(Prefix.parse("192.0.2.0/24"), Prefix.parse("198.51.100.0/24")),
        )
        assert decode_message(msg.encode()) == msg

    def test_withdraw_round_trip(self):
        msg = UpdateMessage(withdrawn=(Prefix.parse("192.0.2.0/24"),))
        assert decode_message(msg.encode()) == msg

    def test_mixed_round_trip(self):
        msg = UpdateMessage(
            withdrawn=(Prefix.parse("203.0.113.0/24"),),
            attributes=ATTRS,
            nlri=(Prefix.parse("192.0.2.0/24"),),
        )
        assert decode_message(msg.encode()) == msg

    def test_empty_update(self):
        msg = UpdateMessage()
        decoded = decode_message(msg.encode())
        assert decoded.withdrawn == () and decoded.nlri == ()
        assert decoded.attributes is None

    def test_nlri_without_attributes_rejected_on_encode(self):
        with pytest.raises(ValueError):
            UpdateMessage(nlri=(Prefix.parse("192.0.2.0/24"),)).encode()

    def test_transaction_count(self):
        msg = UpdateMessage(
            withdrawn=(Prefix.parse("203.0.113.0/24"),),
            attributes=ATTRS,
            nlri=(Prefix.parse("192.0.2.0/24"), Prefix.parse("198.51.100.0/24")),
        )
        assert msg.transaction_count() == 3

    def test_routes(self):
        msg = UpdateMessage(attributes=ATTRS, nlri=(Prefix.parse("192.0.2.0/24"),))
        routes = msg.routes()
        assert len(routes) == 1
        assert routes[0].prefix == Prefix.parse("192.0.2.0/24")
        assert routes[0].attributes == ATTRS

    def test_500_prefix_update_fits(self):
        prefixes = tuple(
            Prefix.parse(f"{10 + i // 256}.{i % 256}.0.0/24") for i in range(500)
        )
        wire = UpdateMessage(attributes=ATTRS, nlri=prefixes).encode()
        assert len(wire) <= MAX_MESSAGE_LEN
        assert decode_message(wire).nlri == prefixes

    def test_withdrawn_overrun_rejected(self):
        msg = UpdateMessage(withdrawn=(Prefix.parse("192.0.2.0/24"),)).encode()
        wire = bytearray(msg)
        wire[HEADER_LEN : HEADER_LEN + 2] = (200).to_bytes(2, "big")
        with pytest.raises(BgpError):
            decode_message(bytes(wire))


class TestKeepaliveAndNotification:
    def test_keepalive_round_trip(self):
        assert decode_message(KeepaliveMessage().encode()) == KeepaliveMessage()

    def test_keepalive_with_body_rejected(self):
        wire = bytearray(KeepaliveMessage().encode())
        wire[16:18] = (HEADER_LEN + 1).to_bytes(2, "big")
        wire.append(0)
        with pytest.raises(BgpError):
            decode_message(bytes(wire))

    def test_notification_round_trip(self):
        msg = NotificationMessage(ErrorCode.CEASE, 2, b"bye")
        assert decode_message(msg.encode()) == msg


class TestFraming:
    def test_bad_marker(self):
        wire = bytearray(KeepaliveMessage().encode())
        wire[0] = 0
        with pytest.raises(BgpError) as excinfo:
            decode_message(bytes(wire))
        assert excinfo.value.notification.subcode == HeaderSubcode.CONNECTION_NOT_SYNCHRONIZED

    def test_bad_type(self):
        wire = bytearray(KeepaliveMessage().encode())
        wire[18] = 9
        with pytest.raises(BgpError) as excinfo:
            decode_message(bytes(wire))
        assert excinfo.value.notification.subcode == HeaderSubcode.BAD_MESSAGE_TYPE

    def test_truncated_body(self):
        wire = OpenMessage(65001, 90, IPv4Address.parse("1.2.3.4")).encode()
        with pytest.raises(BgpError):
            decode_message(wire[:-2])

    def test_trailing_bytes_rejected(self):
        wire = KeepaliveMessage().encode() + b"\x00"
        with pytest.raises(BgpError):
            decode_message(wire)

    def test_iter_messages_splits_stream(self):
        stream = (
            OpenMessage(65001, 90, IPv4Address.parse("1.2.3.4")).encode()
            + KeepaliveMessage().encode()
            + UpdateMessage(attributes=ATTRS, nlri=(Prefix.parse("192.0.2.0/24"),)).encode()
        )
        messages = [m for m, _length in iter_messages(stream)]
        assert len(messages) == 3
        assert isinstance(messages[0], OpenMessage)
        assert isinstance(messages[1], KeepaliveMessage)
        assert isinstance(messages[2], UpdateMessage)

    def test_iter_messages_reports_lengths(self):
        keepalive = KeepaliveMessage().encode()
        lengths = [length for _m, length in iter_messages(keepalive * 3)]
        assert lengths == [HEADER_LEN] * 3

    def test_marker_constant(self):
        assert MARKER == b"\xff" * 16
        assert len(MARKER) == 16

    def test_bad_marker_reported_before_bad_length(self):
        """The O(n) framer peeks the declared length to slice the
        stream, but a corrupt marker must still win the error race —
        RFC 4271 checks synchronization before the length field."""
        wire = bytearray(KeepaliveMessage().encode())
        wire[0] = 0  # marker corrupt
        wire[16:18] = (5).to_bytes(2, "big")  # length also absurd (< header)
        with pytest.raises(BgpError) as excinfo:
            next(iter(iter_messages(bytes(wire))))
        assert (
            excinfo.value.notification.subcode
            == HeaderSubcode.CONNECTION_NOT_SYNCHRONIZED
        )

    def test_iter_messages_matches_per_message_decode(self):
        updates = [
            UpdateMessage(attributes=ATTRS, nlri=(Prefix.parse(f"10.{i}.0.0/16"),))
            for i in range(5)
        ]
        stream = b"".join(m.encode() for m in updates)
        assert [m for m, _length in iter_messages(stream)] == updates


class TestPrefixCache:
    def test_repeat_decode_reuses_prefix_objects(self):
        clear_prefix_cache()
        wire = encode_nlri([Prefix.parse("192.0.2.0/24"), Prefix.parse("10.0.0.0/8")])
        first = decode_nlri(wire)
        second = decode_nlri(wire)
        assert first == second
        for a, b in zip(first, second):
            assert a is b, "cached decode must return the interned Prefix"

    def test_host_bits_rejected_every_time(self):
        # The cache only holds valid prefixes, so the invalid encoding
        # must raise on the second decode exactly as on the first.
        clear_prefix_cache()
        for _ in range(2):
            with pytest.raises(BgpError):
                decode_nlri(b"\x09\x0a\x40")

    def test_clear_prefix_cache_resets_identity(self):
        wire = encode_nlri([Prefix.parse("198.51.100.0/24")])
        (first,) = decode_nlri(wire)
        clear_prefix_cache()
        (second,) = decode_nlri(wire)
        assert first == second
        assert first is not second
