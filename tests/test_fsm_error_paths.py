"""FSM error paths: hold-timer expiry everywhere it can fire,
corrupted bytes surfacing as NOTIFICATIONs through the framer, and
connect-retry counter / backoff growth across repeated failures."""

import pytest

from repro.bgp.errors import ErrorCode, HeaderSubcode
from repro.bgp.fsm import Event, ReconnectBackoff, SessionFsm, State
from repro.bgp.messages import (
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.bgp.policy import ACCEPT_ALL
from repro.bgp.speaker import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.net.addr import IPv4Address
from repro.sim.engine import Simulator

LOCAL_ID = IPv4Address.parse("1.1.1.1")
PEER_ID = IPv4Address.parse("2.2.2.2")


class RecordingActions:
    def __init__(self):
        self.sent = []
        self.connects = 0
        self.drops = 0
        self.updates = []
        self.ups = 0
        self.downs = []

    def send(self, message):
        self.sent.append(message)

    def start_connect(self):
        self.connects += 1

    def drop_connection(self):
        self.drops += 1

    def deliver_update(self, update):
        self.updates.append(update)

    def session_up(self):
        self.ups += 1

    def session_down(self, reason):
        self.downs.append(reason)


def make_fsm(hold_time=90.0, backoff=None):
    actions = RecordingActions()
    fsm = SessionFsm(65000, LOCAL_ID, actions, hold_time=hold_time, backoff=backoff)
    return fsm, actions


def drive_to(fsm, state, now=0.0):
    """Walk the happy path up to *state*."""
    fsm.handle(Event.MANUAL_START, now=now)
    if state is State.CONNECT:
        return
    fsm.handle(Event.TCP_CONNECTED, now=now)
    if state is State.OPEN_SENT:
        return
    fsm.handle_message(OpenMessage(65001, 90, PEER_ID), now=now)
    if state is State.OPEN_CONFIRM:
        return
    fsm.handle_message(KeepaliveMessage(), now=now)
    assert fsm.state is State.ESTABLISHED


class TestHoldTimerExpiry:
    """The hold timer can fire in OpenSent, OpenConfirm, and
    Established; each must NOTIFY (code 4) and fall to Idle."""

    @pytest.mark.parametrize(
        "state", [State.OPEN_SENT, State.OPEN_CONFIRM, State.ESTABLISHED]
    )
    def test_expiry_notifies_and_idles(self, state):
        fsm, actions = make_fsm()
        drive_to(fsm, state)
        assert fsm.state is state
        assert fsm.timers.hold_deadline is not None

        fsm.tick(fsm.timers.hold_deadline + 0.1)
        assert fsm.state is State.IDLE
        notification = actions.sent[-1]
        assert isinstance(notification, NotificationMessage)
        assert notification.code == ErrorCode.HOLD_TIMER_EXPIRED
        assert fsm.timers.hold_deadline is None
        assert fsm.timers.keepalive_deadline is None

    def test_established_expiry_reports_session_down(self):
        fsm, actions = make_fsm()
        drive_to(fsm, State.ESTABLISHED)
        fsm.tick(fsm.timers.hold_deadline + 0.1)
        assert actions.downs == ["hold timer expired"]

    def test_received_traffic_rearms_hold(self):
        fsm, actions = make_fsm()
        drive_to(fsm, State.ESTABLISHED)
        fsm.handle_message(KeepaliveMessage(), now=50.0)
        fsm.tick(95.0)  # original deadline (90) has passed, re-armed one not
        assert fsm.state is State.ESTABLISHED
        fsm.tick(140.1)
        assert fsm.state is State.IDLE


class TestSimAttachedTimers:
    """With a simulator attached, deadlines fire as virtual-clock
    events — no tick() polling — and re-arming reuses one heap entry."""

    def test_keepalives_fire_and_reuse_one_heap_entry(self):
        sim = Simulator()
        fsm, actions = make_fsm()
        fsm.attach_simulator(sim)
        drive_to(fsm, State.ESTABLISHED)

        handle = fsm._timer_handles["keepalive"]
        entry = handle._event
        keepalives_before = sum(
            isinstance(m, KeepaliveMessage) for m in actions.sent
        )
        sim.fire_due(until=61.0)  # two keepalive periods (30s each)
        keepalives_after = sum(
            isinstance(m, KeepaliveMessage) for m in actions.sent
        )
        assert keepalives_after == keepalives_before + 2
        assert fsm._timer_handles["keepalive"] is handle
        assert handle._event is entry

    def test_hold_expires_on_virtual_clock(self):
        sim = Simulator()
        fsm, actions = make_fsm()
        fsm.attach_simulator(sim)
        drive_to(fsm, State.ESTABLISHED)

        sim.fire_due(until=200.0)
        assert fsm.state is State.IDLE
        assert actions.downs == ["hold timer expired"]
        assert isinstance(actions.sent[-1], NotificationMessage)
        assert actions.sent[-1].code == ErrorCode.HOLD_TIMER_EXPIRED

    def test_inbound_keepalive_defers_sim_hold_expiry(self):
        sim = Simulator()
        fsm, actions = make_fsm()
        fsm.attach_simulator(sim)
        drive_to(fsm, State.ESTABLISHED)

        def feed():
            if sim.now <= 60.0 and fsm.state is State.ESTABLISHED:
                fsm.handle_message(KeepaliveMessage(), now=sim.now)
                sim.schedule(30.0, feed)

        sim.schedule(30.0, feed)
        sim.fire_due(until=120.0)
        assert fsm.state is State.ESTABLISHED  # hold pushed to 60+90
        sim.fire_due(until=200.0)
        assert fsm.state is State.IDLE

    def test_teardown_cancels_sim_timers(self):
        sim = Simulator()
        fsm, actions = make_fsm()
        fsm.attach_simulator(sim)
        drive_to(fsm, State.ESTABLISHED)
        fsm.handle(Event.MANUAL_STOP, now=0.0)
        assert all(not h.active for h in fsm._timer_handles.values())
        assert sim.peek_time() is None


class TestFramerCorruption:
    """Corrupted wire bytes must surface as the taxonomy's NOTIFICATION
    and tear the session down — the path fault links exercise."""

    def setup_speaker(self):
        speaker = BgpSpeaker(
            SpeakerConfig(
                asn=65000,
                bgp_identifier=LOCAL_ID,
                local_address=LOCAL_ID,
                hold_time=0.0,
            )
        )
        sent = []
        speaker.add_peer(
            PeerConfig("peer", 65001, PEER_ID, ACCEPT_ALL, ACCEPT_ALL)
        )
        speaker.set_send_callback("peer", sent.append)
        speaker.start_peer("peer")
        speaker.transport_connected("peer")
        return speaker, sent

    def establish(self, speaker):
        speaker.receive_bytes("peer", OpenMessage(65001, 0, PEER_ID).encode())
        speaker.receive_bytes("peer", KeepaliveMessage().encode())
        assert speaker.peers["peer"].established

    def test_corrupted_open_marker_notifies(self):
        speaker, sent = self.setup_speaker()
        wire = bytearray(OpenMessage(65001, 0, PEER_ID).encode())
        wire[3] ^= 0xFF  # damage the all-ones marker
        speaker.receive_bytes("peer", bytes(wire))

        assert not speaker.peers["peer"].established
        notification = NotificationMessage.decode_body(sent[-1][19:])
        assert notification.code == ErrorCode.MESSAGE_HEADER_ERROR
        assert notification.subcode == HeaderSubcode.CONNECTION_NOT_SYNCHRONIZED

    def test_corrupted_update_tears_down_established_session(self):
        speaker, sent = self.setup_speaker()
        self.establish(speaker)
        update = bytearray(
            UpdateMessage(withdrawn=()).encode()
        )
        update[0] ^= 0x01  # marker no longer all ones
        speaker.receive_bytes("peer", bytes(update))

        assert not speaker.peers["peer"].established
        notification = NotificationMessage.decode_body(sent[-1][19:])
        assert notification.code == ErrorCode.MESSAGE_HEADER_ERROR
        events = speaker.session_events()
        assert events[-1][1].startswith("down:")

    def test_garbage_length_field_notifies(self):
        speaker, sent = self.setup_speaker()
        self.establish(speaker)
        update = bytearray(UpdateMessage(withdrawn=()).encode())
        update[17] = 0x01  # header length below the 19-byte minimum
        speaker.receive_bytes("peer", bytes(update))
        assert not speaker.peers["peer"].established
        notification = NotificationMessage.decode_body(sent[-1][19:])
        assert notification.code == ErrorCode.MESSAGE_HEADER_ERROR


class TestConnectRetryGrowth:
    def test_counter_grows_across_session_losses(self):
        fsm, actions = make_fsm()
        for expected in (1, 2, 3):
            drive_to(fsm, State.ESTABLISHED)
            fsm.handle(Event.TCP_FAILED)
            assert fsm.state is State.IDLE
            assert fsm.connect_retry_counter == expected

    def test_backoff_stretches_connect_retry_deadline(self):
        backoff = ReconnectBackoff(base=1.0, multiplier=2.0, jitter=0.0)
        fsm, actions = make_fsm(backoff=backoff)
        delays = []
        drive_to(fsm, State.ESTABLISHED)
        for _ in range(3):
            fsm.handle(Event.TCP_FAILED, now=0.0)
            fsm.handle(Event.MANUAL_START, now=0.0)
            delays.append(fsm.timers.connect_retry_deadline)
            fsm.handle(Event.TCP_CONNECTED, now=0.0)
            fsm.handle_message(OpenMessage(65001, 90, PEER_ID), now=0.0)
            fsm.handle_message(KeepaliveMessage(), now=0.0)
            assert fsm.state is State.ESTABLISHED
        # counter was 1, 2, 3 at the successive restarts
        assert delays == [2.0, 4.0, 8.0]

    def test_without_backoff_retry_time_is_flat(self):
        fsm, actions = make_fsm()
        fsm.handle(Event.MANUAL_START, now=0.0)
        assert fsm.timers.connect_retry_deadline == 120.0


class TestReconnectBackoff:
    def test_exponential_growth_and_cap(self):
        backoff = ReconnectBackoff(base=1.0, multiplier=2.0, cap=60.0, jitter=0.0)
        assert [backoff.delay(i) for i in range(7)] == [
            1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 60.0,
        ]
        assert backoff.delay(400) == 60.0  # huge attempts stay capped

    def test_jitter_is_deterministic_per_seed_and_attempt(self):
        a = ReconnectBackoff(seed=7)
        b = ReconnectBackoff(seed=7)
        assert [a.delay(i) for i in range(5)] == [b.delay(i) for i in range(5)]

    def test_distinct_seeds_desynchronise(self):
        a = ReconnectBackoff(seed=1)
        b = ReconnectBackoff(seed=2)
        assert [a.delay(i) for i in range(5)] != [b.delay(i) for i in range(5)]

    def test_jitter_bounds(self):
        backoff = ReconnectBackoff(base=10.0, multiplier=1.0, jitter=0.25, seed=3)
        for attempt in range(50):
            assert 7.5 <= backoff.delay(attempt) <= 12.5

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            ReconnectBackoff().delay(-1)
