"""Tests for scripted update timelines."""

import pytest

from repro.benchmark.harness import SPEAKER1, SPEAKER1_ADDR, SPEAKER1_ASN
from repro.bgp.policy import ACCEPT_ALL
from repro.bgp.speaker import PeerConfig
from repro.systems import build_system
from repro.workload.events import Timeline, steady_state_churn
from repro.workload.tablegen import generate_table
from repro.workload.updates import UpdateStreamBuilder

BUILDER = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)


def prepared_router(platform="xeon"):
    router = build_system(platform)
    router.add_peer(
        PeerConfig(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR, ACCEPT_ALL, ACCEPT_ALL)
    )
    router.handshake(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR)
    return router


class TestTimelineConstruction:
    def test_add_and_order(self):
        timeline = Timeline()
        timeline.add(2.0, "a", b"late")
        timeline.add(1.0, "a", b"early")
        deliveries = timeline.deliveries()
        assert [d.packet for d in deliveries] == [b"early", b"late"]
        assert timeline.end_time == 2.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Timeline().add(-1.0, "a", b"x")

    def test_burst(self):
        timeline = Timeline().add_burst(5.0, "a", [b"1", b"2", b"3"])
        assert len(timeline) == 3
        assert all(d.time == 5.0 for d in timeline.deliveries())

    def test_paced(self):
        timeline = Timeline().add_paced(1.0, "a", [b"1", b"2", b"3"], rate=2.0)
        times = [d.time for d in timeline.deliveries()]
        assert times == [1.0, 1.5, 2.0]

    def test_paced_rate_validation(self):
        with pytest.raises(ValueError):
            Timeline().add_paced(0.0, "a", [b"x"], rate=0.0)

    def test_poisson_bounded_by_duration(self):
        packets = [bytes([i % 256]) for i in range(10_000)]
        timeline = Timeline().add_poisson(0.0, 10.0, "a", packets, rate=100.0, seed=1)
        assert all(d.time < 10.0 for d in timeline.deliveries())
        # Mean 100/s over 10s: expect ~1000 arrivals, loosely.
        assert 700 <= len(timeline) <= 1300

    def test_poisson_deterministic_per_seed(self):
        packets = [b"x"] * 500
        a = Timeline().add_poisson(0.0, 5.0, "a", packets, rate=50.0, seed=7)
        b = Timeline().add_poisson(0.0, 5.0, "a", packets, rate=50.0, seed=7)
        assert [d.time for d in a.deliveries()] == [d.time for d in b.deliveries()]

    def test_packets_between(self):
        timeline = Timeline().add_paced(0.0, "a", [b"x"] * 10, rate=1.0)
        assert timeline.packets_between(0.0, 5.0) == 5

    def test_composition(self):
        table = generate_table(20, seed=2)
        timeline = Timeline()
        timeline.add_burst(0.0, "a", BUILDER.announcements(table, 20))
        timeline.add_paced(10.0, "a", BUILDER.withdrawals(table, 1), rate=10.0)
        assert timeline.packets_between(0.0, 1.0) == 1
        assert timeline.packets_between(10.0, 12.0) == 20


class TestExecution:
    def test_deliver_to_router(self):
        router = prepared_router()
        table = generate_table(50, seed=4)
        timeline = Timeline().add_paced(
            0.0, SPEAKER1, BUILDER.announcements(table, 1), rate=1000.0
        )
        timeline.deliver_to(router)
        router.run_until_idle()
        assert len(router.speaker.loc_rib) == 50
        # Last delivery at 49 ms: the run must span at least that.
        assert router.now >= 0.049

    def test_steady_state_churn_is_processable(self):
        router = prepared_router()
        table = generate_table(100, seed=5)
        timeline = steady_state_churn(SPEAKER1, table, BUILDER, duration=5.0, rate=100.0)
        timeline.deliver_to(router)
        router.run_until_idle()
        # The Xeon absorbs 100/s trivially: total processed transactions
        # equal the offered count.
        assert router.transactions_completed == len(timeline)

    def test_churn_rate_approximates_target(self):
        table = generate_table(100, seed=5)
        timeline = steady_state_churn(SPEAKER1, table, BUILDER, duration=20.0, rate=100.0)
        observed = len(timeline) / 20.0
        assert 70 <= observed <= 130
