"""Checkpoint journal: durability, staleness, and resume semantics."""

import json

import pytest

from repro.grid import (
    ChaosPlan,
    ExecutionPolicy,
    GridCell,
    RunJournal,
    enumerate_grid,
    run_grid,
)
from repro.grid.journal import JOURNAL_FORMAT

CELLS = enumerate_grid(
    scenarios=[1], platforms=["cisco", "pentium3"], seeds=[7], table_sizes=[60]
)


def journal_at(tmp_path, fingerprint="fp") -> RunJournal:
    return RunJournal(tmp_path / "journal.jsonl", fingerprint=fingerprint)


class TestJournalFile:
    def test_record_and_replay_roundtrip(self, tmp_path):
        journal = journal_at(tmp_path)
        cell = CELLS[0]
        journal.record(cell, "ok", {"transactions": 1})
        records = journal.completed()
        assert records[cell.cell_id].result == {"transactions": 1}
        assert records[cell.cell_id].spec == cell.spec()

    def test_last_record_per_cell_wins(self, tmp_path):
        journal = journal_at(tmp_path)
        cell = CELLS[0]
        journal.record(cell, "ok", {"transactions": 1})
        journal.record(cell, "ok", {"transactions": 2})
        assert journal.completed()[cell.cell_id].result == {"transactions": 2}

    def test_failures_are_journalled_but_not_resumable(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.record(CELLS[0], "crashed", None, detail={"attempts": []})
        assert journal.completed() == {}
        assert journal.load()[CELLS[0].cell_id].outcome == "crashed"

    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.record(CELLS[0], "ok", {"transactions": 1})
        with open(journal.path, "a") as handle:
            handle.write('{"format": 1, "cell_id": "s1-pent')  # interrupted write
        assert list(journal.completed()) == [CELLS[0].cell_id]

    def test_fingerprint_mismatch_invalidates_records(self, tmp_path):
        journal_at(tmp_path, "before").record(CELLS[0], "ok", {"transactions": 1})
        assert journal_at(tmp_path, "after").completed() == {}

    def test_unknown_format_is_skipped(self, tmp_path):
        journal = journal_at(tmp_path)
        entry = {
            "format": JOURNAL_FORMAT + 1, "fingerprint": "fp",
            "cell_id": CELLS[0].cell_id, "spec": CELLS[0].spec(),
            "outcome": "ok", "result": {},
        }
        journal.path.write_text(json.dumps(entry) + "\n")
        assert journal.completed() == {}

    def test_unknown_outcome_rejected_at_write(self, tmp_path):
        with pytest.raises(ValueError):
            journal_at(tmp_path).record(CELLS[0], "exploded")

    def test_missing_file_loads_empty(self, tmp_path):
        assert journal_at(tmp_path).load() == {}


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        partial = run_grid(CELLS[:1], workers=1, journal=journal)
        assert partial.executed == 1

        resumed = run_grid(CELLS, workers=1, journal=journal, resume=True)
        assert resumed.resumed == 1
        assert resumed.executed == len(CELLS) - 1
        # Byte-identical to a fresh full run.
        assert resumed.to_json() == run_grid(CELLS, workers=1).to_json()

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        run_grid(CELLS[:1], workers=1, journal=journal)
        run_grid(CELLS[1:], workers=1, journal=journal)  # non-resume: reset
        assert list(journal.completed()) == [CELLS[1].cell_id]

    def test_resume_after_crash_reruns_only_the_failed_cell(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        chaos = ChaosPlan.from_spec({CELLS[0].cell_id: {"kind": "crash"}})
        wounded = run_grid(
            CELLS, workers=1, policy=ExecutionPolicy(), chaos=chaos, journal=journal
        )
        assert not wounded.ok

        # The fault is gone (machine rebooted, bug fixed): --resume
        # re-executes the crashed cell only.
        healed = run_grid(CELLS, workers=1, journal=journal, resume=True)
        assert healed.ok
        assert healed.resumed == len(CELLS) - 1
        assert healed.executed == 1
        assert healed.to_json() == run_grid(CELLS, workers=1).to_json()

    def test_resume_ignores_journal_from_changed_source(self, tmp_path):
        stale = RunJournal(tmp_path / "journal.jsonl", fingerprint="old-tree")
        run_grid(CELLS[:1], workers=1, journal=stale)

        current = RunJournal(tmp_path / "journal.jsonl", fingerprint="new-tree")
        report = run_grid(CELLS[:1], workers=1, journal=current, resume=True)
        assert report.resumed == 0
        assert report.executed == 1

    def test_resumed_cells_count_toward_journal_continuity(self, tmp_path):
        """A resumed run re-records nothing but its journal still covers
        newly executed cells, so a second resume completes instantly."""
        journal = RunJournal(tmp_path / "journal.jsonl")
        run_grid(CELLS[:1], workers=1, journal=journal)
        run_grid(CELLS, workers=1, journal=journal, resume=True)
        third = run_grid(CELLS, workers=1, journal=journal, resume=True)
        assert third.resumed == len(CELLS)
        assert third.executed == 0
