"""Unit tests for the fault-injection link layer."""

import pytest

from repro.bgp.policy import ACCEPT_ALL
from repro.bgp.speaker import PeerConfig
from repro.faults import (
    PERFECT,
    FaultScript,
    FaultyLink,
    FlapStorm,
    LinkPartition,
    LinkPolicy,
    PeerCrash,
    PeerReset,
)
from repro.benchmark.harness import SPEAKER1, SPEAKER1_ADDR, SPEAKER1_ASN
from repro.sim.engine import Simulator
from repro.systems.platforms import build_system
from repro.workload.tablegen import generate_table
from repro.workload.updates import UpdateStreamBuilder


def make_link(policy=PERFECT, seed=0):
    sim = Simulator()
    got = []
    link = FaultyLink(sim, lambda data: got.append((sim.now, data)), policy, seed=seed)
    return sim, link, got


class TestPolicyValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            LinkPolicy(drop_rate=1.5)
        with pytest.raises(ValueError):
            LinkPolicy(corrupt_rate=-0.1)

    def test_latencies_must_be_non_negative(self):
        with pytest.raises(ValueError):
            LinkPolicy(delay=-1.0)

    def test_retransmit_timeout_positive_or_none(self):
        with pytest.raises(ValueError):
            LinkPolicy(retransmit_timeout=0.0)
        LinkPolicy(retransmit_timeout=None)  # hard-loss mode is legal


class TestPerfectLink:
    def test_zero_latency_delivery_is_synchronous(self):
        sim, link, got = make_link()
        link.send(b"hello")
        # No sim.run() needed: a clean link behaves like direct wiring.
        assert got == [(0.0, b"hello")]
        assert link.stats.offered == link.stats.delivered == 1

    def test_delay_schedules_on_virtual_clock(self):
        sim, link, got = make_link(LinkPolicy(delay=0.5))
        link.send(b"x")
        assert got == []
        sim.run()
        assert got == [(0.5, b"x")]
        assert link.stats.delayed == 1


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        policy = LinkPolicy(
            drop_rate=0.2, corrupt_rate=0.1, reorder_rate=0.2,
            delay=0.01, delay_jitter=0.02,
        )
        runs = []
        for _ in range(2):
            sim, link, got = make_link(policy, seed=7)
            for i in range(100):
                link.send(bytes([i]))
            sim.run()
            runs.append((got, link.stats.summary()))
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        policy = LinkPolicy(drop_rate=0.3, delay=0.01, delay_jitter=0.05)
        outcomes = []
        for seed in (1, 2):
            sim, link, got = make_link(policy, seed=seed)
            for i in range(50):
                link.send(bytes([i]))
            sim.run()
            outcomes.append(got)
        assert outcomes[0] != outcomes[1]


class TestRetransmission:
    def test_dropped_packet_arrives_late_not_never(self):
        sim, link, got = make_link(LinkPolicy(retransmit_timeout=0.2))
        link.partition()
        link.send(b"probe")
        assert got == []
        sim.schedule(0.3, link.heal)  # heal after the first RTO
        sim.run()
        assert [data for _, data in got] == [b"probe"]
        assert got[0][0] >= 0.2
        assert link.stats.retransmits >= 1
        assert link.stats.delivered == 1

    def test_retry_budget_exhaustion_is_a_hard_loss(self):
        sim, link, got = make_link(
            LinkPolicy(retransmit_timeout=0.1, max_retransmits=2)
        )
        lost = []
        link.on_loss = lost.append
        link.partition()
        link.send(b"doomed")
        sim.run()
        assert got == []
        assert lost == [b"doomed"]
        assert link.stats.lost == 1
        assert link.stats.dropped == 3  # initial try + 2 retransmits

    def test_no_retransmission_means_immediate_loss(self):
        sim, link, got = make_link(
            LinkPolicy(drop_rate=1.0, retransmit_timeout=None)
        )
        lost = []
        link.on_loss = lost.append
        link.send(b"gone")
        assert lost == [b"gone"]
        assert link.stats.retransmits == 0


class TestPartition:
    def test_timed_partition_heals_itself(self):
        sim, link, got = make_link(LinkPolicy(retransmit_timeout=0.2))
        link.partition(1.0)
        link.send(b"a")
        sim.run()
        assert not link.partitioned
        assert [data for _, data in got] == [b"a"]
        assert got[0][0] >= 1.0

    def test_repartition_cancels_earlier_heal(self):
        sim, link, got = make_link()
        link.partition(1.0)
        link.partition(5.0)
        sim.run(until=2.0)
        assert link.partitioned
        sim.run()
        assert not link.partitioned

    def test_partition_duration_must_be_positive(self):
        sim, link, got = make_link()
        with pytest.raises(ValueError):
            link.partition(0.0)


class TestCorruptionAndReorder:
    def test_corruption_flips_exactly_one_byte(self):
        sim, link, got = make_link(LinkPolicy(corrupt_rate=1.0))
        link.send(b"\x00" * 32)
        assert len(got) == 1
        data = got[0][1]
        assert data != b"\x00" * 32
        assert sum(1 for b in data if b != 0) == 1
        assert link.stats.corrupted == 1

    def test_reordered_packet_overtaken(self):
        # Seed 9: packet A drawn for reorder, B not, so B overtakes.
        sim, link, got = make_link(
            LinkPolicy(reorder_rate=0.5, reorder_extra=0.05), seed=9
        )
        link.send(b"A")
        link.send(b"B")
        sim.run()
        assert [data for _, data in got] == [b"B", b"A"]
        assert link.stats.reordered == 1


class TestCorruptionTeardown:
    def test_corrupted_update_surfaces_as_notification_teardown(self):
        """End to end: link corruption -> framer/parser BgpError ->
        NOTIFICATION -> session down with routes flushed."""
        router = build_system("pentium3")
        router.add_peer(
            PeerConfig(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR, ACCEPT_ALL, ACCEPT_ALL)
        )
        router.handshake(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR)
        link = FaultyLink(
            router.world.sim,
            lambda data: router.deliver(SPEAKER1, data),
            LinkPolicy(corrupt_rate=1.0),
            seed=0,
        )
        builder = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)
        for packet in builder.announcements(generate_table(20, 1), 1):
            link.send(packet)
        router.run_until_idle()

        assert not router.speaker.peers[SPEAKER1].established
        peer_id, event = router.speaker.session_events()[-1]
        assert peer_id == SPEAKER1
        assert event.startswith("down:")
        # The NOTIFICATION went out on the wire before the drop.
        assert any(out and out[-1][18] == 3 for out in [router.outboxes[SPEAKER1]])


class TestFaultScript:
    def setup_router(self):
        router = build_system("pentium3")
        router.add_peer(
            PeerConfig(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR, ACCEPT_ALL, ACCEPT_ALL)
        )
        router.handshake(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR)
        return router

    def test_peer_crash_drops_session_mid_run(self):
        router = self.setup_router()
        script = FaultScript([PeerCrash(1.0, SPEAKER1)])
        script.arm(router)
        router.run_until_idle()
        assert not router.speaker.peers[SPEAKER1].established
        assert len(script.log) == 1
        assert script.log[0].time == 1.0

    def test_peer_reset_arrives_as_cease_notification(self):
        router = self.setup_router()
        script = FaultScript([PeerReset(0.5, SPEAKER1)])
        script.arm(router)
        router.run_until_idle()
        assert not router.speaker.peers[SPEAKER1].established
        _, event = router.speaker.session_events()[-1]
        assert "Cease" in event or "CEASE" in event.upper()

    def test_flap_storm_expands_to_crashes(self):
        storm = FlapStorm(2.0, "p", count=3, interval=0.5)
        crashes = storm.expand()
        assert [c.at for c in crashes] == [2.0, 2.5, 3.0]
        script = FaultScript([storm])
        assert len(script.events) == 3

    def test_partition_event_requires_link(self):
        router = self.setup_router()
        script = FaultScript([LinkPartition(1.0, SPEAKER1, 2.0)])
        with pytest.raises(KeyError):
            script.arm(router)

    def test_events_sorted_by_time(self):
        script = FaultScript([PeerCrash(5.0, "p"), PeerCrash(1.0, "p")])
        assert [e.at for e in script.events] == [1.0, 5.0]

    def test_storm_validation(self):
        with pytest.raises(ValueError):
            FlapStorm(0.0, "p", count=0, interval=1.0).expand()
        with pytest.raises(ValueError):
            FlapStorm(0.0, "p", count=2, interval=0.0).expand()
