"""The determinism linter: rules, suppression, reports, CLI exit codes.

Every rule id has a bad/good fixture pair under ``tests/fixtures/lint``;
the bad file must produce at least one finding of exactly that rule and
the good file must be clean. The source tree itself must lint clean —
that is the invariant the CI ``lint`` job enforces.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import lint_paths, render_json, render_text
from repro.analysis.linter import is_suppressed, lint_source, noqa_map, suppressed_ids
from repro.analysis.rules import all_rules, get_rule, rule_ids
from repro.experiments.runner import main as bgpbench

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
RULE_IDS = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006", "RPR007")


def lint_fixture(name: str):
    path = FIXTURES / name
    return lint_source(str(path), path.read_text())


class TestRegistry:
    def test_every_rule_registered_once(self):
        assert rule_ids() == list(RULE_IDS)

    def test_rules_carry_docstring_and_severity(self):
        for rule in all_rules():
            assert rule.__doc__ and rule.rule_id in rule.__doc__
            assert rule.severity in ("error", "warning")

    def test_get_rule_rejects_unknown_id(self):
        with pytest.raises(KeyError):
            get_rule("RPR999")


class TestFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_triggers_its_rule(self, rule_id):
        findings, _ = lint_fixture(f"{rule_id.lower()}_bad.py")
        assert {f.rule_id for f in findings} == {rule_id}
        for finding in findings:
            assert finding.line > 0
            assert rule_id in finding.render()

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixture_is_clean(self, rule_id):
        findings, _ = lint_fixture(f"{rule_id.lower()}_good.py")
        assert findings == []


class TestSuppression:
    def test_blanket_noqa_suppresses_everything(self):
        assert suppressed_ids("x = 1  # repro: noqa") == frozenset()
        findings, suppressed = lint_source(
            "t.py", "import time\nnow = time.time()  # repro: noqa\n"
        )
        assert findings == []
        assert suppressed == 1

    def test_targeted_noqa_suppresses_only_named_rules(self):
        assert suppressed_ids("# repro: noqa[RPR001, RPR005]") == frozenset(
            {"RPR001", "RPR005"}
        )
        source = "import time\nnow = time.time()  # repro: noqa[RPR002]\n"
        findings, suppressed = lint_source("t.py", source)
        assert [f.rule_id for f in findings] == ["RPR001"]
        assert suppressed == 0

    def test_line_without_noqa(self):
        assert suppressed_ids("now = time.time()") is None

    def test_noqa_inside_string_literal_does_not_suppress(self):
        # Regression: the old per-line regex treated noqa text inside a
        # string literal as a suppression; only real comments count.
        source = 'import time\nnow = (time.time(), "# repro: noqa")\n'
        findings, suppressed = lint_source("t.py", source)
        assert [f.rule_id for f in findings] == ["RPR001"]
        assert suppressed == 0

    def test_noqa_inside_docstring_does_not_suppress(self):
        source = (
            "import time\n"
            "def f():\n"
            '    "uses # repro: noqa[RPR001] syntax"\n'
            "    return time.time()\n"
        )
        findings, _ = lint_source("t.py", source)
        assert [f.rule_id for f in findings] == ["RPR001"]

    def test_noqa_map_only_records_comment_tokens(self):
        source = (
            'text = "# repro: noqa"\n'
            "x = 1  # repro: noqa\n"
            "y = 2  # repro: noqa[RPR003]\n"
        )
        noqa = noqa_map(source)
        assert set(noqa) == {2, 3}
        assert noqa[2] == frozenset()
        assert noqa[3] == frozenset({"RPR003"})

    def test_noqa_map_falls_back_on_untokenizable_source(self):
        # Unterminated string: tokenize raises, the per-line scan kicks in.
        noqa = noqa_map('x = "unclosed\ny = 1  # repro: noqa\n')
        assert 2 in noqa

    def test_is_suppressed_matches_rule_and_line(self):
        from repro.analysis.rules import Finding

        finding = Finding(
            path="t.py", line=3, col=0, rule_id="RPR001", message="m", severity="error"
        )
        assert is_suppressed(finding, {3: frozenset()})
        assert is_suppressed(finding, {3: frozenset({"RPR001"})})
        assert not is_suppressed(finding, {3: frozenset({"RPR002"})})
        assert not is_suppressed(finding, {4: frozenset()})


class TestPrintRule:
    def test_library_print_flagged(self):
        findings, _ = lint_source("lib.py", "print('hello')\n")
        assert [f.rule_id for f in findings] == ["RPR007"]

    def test_cli_marker_exempts_module(self):
        findings, _ = lint_source(
            "cli.py", "# repro: cli — entry point\nprint('hello')\n"
        )
        assert findings == []

    def test_targeted_noqa_suppresses_print(self):
        findings, _ = lint_source("lib.py", "print('x')  # repro: noqa[RPR007]\n")
        assert findings == []

    def test_print_method_not_flagged(self):
        findings, _ = lint_source("lib.py", "console.print('x')\n")
        assert findings == []


class TestReports:
    def test_source_tree_lints_clean(self):
        report = lint_paths()
        assert report.ok, render_text(report)
        assert report.files_scanned > 50

    def test_json_report_shape(self):
        report = lint_paths([FIXTURES / "rpr001_bad.py"])
        payload = json.loads(render_json(report))
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        assert payload["counts_by_rule"] == {"RPR001": 3}
        first = payload["findings"][0]
        assert first["rule_id"] == "RPR001"
        assert first["path"].endswith("rpr001_bad.py")

    def test_select_restricts_rules(self):
        report = lint_paths([FIXTURES], select=["RPR004"])
        assert set(report.counts_by_rule()) == {"RPR004"}
        with pytest.raises(ValueError):
            lint_paths([FIXTURES], select=["RPR999"])

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = lint_paths([bad])
        assert not report.ok
        assert report.parse_errors and "broken.py" in report.parse_errors[0]

    def test_default_paths_cover_installed_package(self):
        report = lint_paths()
        package_root = Path(repro.__file__).resolve().parent
        assert report.files_scanned == len(
            [
                p
                for p in package_root.rglob("*.py")
                if "__pycache__" not in p.parts
            ]
        )


class TestCli:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert bgpbench(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_bad_fixture_exits_nonzero(self, capsys):
        code = bgpbench(["lint", str(FIXTURES / "rpr002_bad.py")])
        assert code == 1
        assert "RPR002" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        assert bgpbench(["lint", "--format", "json", str(FIXTURES / "rpr005_bad.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts_by_rule"] == {"RPR005": 1}

    def test_lint_unknown_select_exits_two(self, capsys):
        assert bgpbench(["lint", "--select", "RPR999"]) == 2
        assert "unknown rule ids" in capsys.readouterr().err

    def test_list_rules_names_every_rule(self, capsys):
        assert bgpbench(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out
