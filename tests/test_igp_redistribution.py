"""Tests for IGP -> BGP redistribution across both IGP substrates."""

import pytest

from repro.bgp.messages import KeepaliveMessage, OpenMessage, decode_message
from repro.bgp.speaker import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.forwarding.fib import Fib
from repro.igp.ospf import OspfNetwork
from repro.igp.redistribution import IgpSite, Redistributor, rip_table_view
from repro.igp.rip import RipNetwork
from repro.igp.topology import Topology
from repro.net.addr import IPv4Address, Prefix

P_LOCAL = Prefix.parse("10.10.0.0/16")
P_R1 = Prefix.parse("10.11.0.0/16")
P_R2A = Prefix.parse("10.12.0.0/16")
P_R2B = Prefix.parse("10.13.0.0/16")

SITES = {
    "r0": IgpSite(IPv4Address.parse("172.16.0.1"), (P_LOCAL,)),
    "r1": IgpSite(IPv4Address.parse("172.16.0.2"), (P_R1,)),
    "r2": IgpSite(IPv4Address.parse("172.16.0.3"), (P_R2A, P_R2B)),
}


def make_speaker():
    return BgpSpeaker(
        SpeakerConfig(
            asn=65000,
            bgp_identifier=IPv4Address.parse("9.9.9.9"),
            local_address=IPv4Address.parse("172.16.0.1"),
            hold_time=0.0,
        ),
        fib=Fib(),
    )


def ospf_three_line():
    """r0 - r1 - r2 with unit costs, converged OSPF."""
    topology = Topology.line(3)
    network = OspfNetwork(topology)
    network.announce_all()
    return topology, network


class TestDesiredRoutes:
    def test_local_site_cost_zero(self):
        speaker = make_speaker()
        redis = Redistributor(speaker, SITES, "r0")
        desired = redis.desired_routes({})
        assert desired[P_LOCAL] == (0, SITES["r0"].address)

    def test_remote_sites_carry_igp_cost_as_med(self):
        _topology, network = ospf_three_line()
        speaker = make_speaker()
        redis = Redistributor(speaker, SITES, "r0")
        desired = redis.desired_routes(network.routers["r0"].routing_table)
        assert desired[P_R1][0] == 1
        assert desired[P_R2A][0] == 2
        assert desired[P_R2B][0] == 2

    def test_next_hop_is_first_hop_router(self):
        _topology, network = ospf_three_line()
        redis = Redistributor(make_speaker(), SITES, "r0")
        desired = redis.desired_routes(network.routers["r0"].routing_table)
        # Everything beyond r0 is reached via r1.
        assert desired[P_R2A][1] == SITES["r1"].address

    def test_unknown_destinations_ignored(self):
        redis = Redistributor(make_speaker(), SITES, "r0")
        desired = redis.desired_routes({"mystery": (5.0, "r1")})
        assert set(desired) == {P_LOCAL}

    def test_local_router_must_be_known(self):
        with pytest.raises(ValueError):
            Redistributor(make_speaker(), SITES, "r99")


class TestSync:
    def test_initial_sync_originates_everything(self):
        _topology, network = ospf_three_line()
        speaker = make_speaker()
        redis = Redistributor(speaker, SITES, "r0")
        stats = redis.sync(network.routers["r0"].routing_table)
        assert stats == {"originated": 4, "withdrawn": 0, "updated": 0}
        assert len(speaker.loc_rib) == 4
        route = speaker.loc_rib.get(P_R2A)
        assert route.attributes.med == 2

    def test_idempotent(self):
        _topology, network = ospf_three_line()
        speaker = make_speaker()
        redis = Redistributor(speaker, SITES, "r0")
        redis.sync(network.routers["r0"].routing_table)
        stats = redis.sync(network.routers["r0"].routing_table)
        assert stats == {"originated": 0, "withdrawn": 0, "updated": 0}

    def test_partition_withdraws(self):
        topology, network = ospf_three_line()
        speaker = make_speaker()
        redis = Redistributor(speaker, SITES, "r0")
        redis.sync(network.routers["r0"].routing_table)
        topology.remove_link("r1", "r2")
        network.link_event("r1", "r2")
        stats = redis.sync(network.routers["r0"].routing_table)
        assert stats["withdrawn"] == 2  # r2's two prefixes
        assert P_R2A not in speaker.loc_rib
        assert P_R1 in speaker.loc_rib

    def test_cost_change_updates_med(self):
        topology, network = ospf_three_line()
        speaker = make_speaker()
        redis = Redistributor(speaker, SITES, "r0")
        redis.sync(network.routers["r0"].routing_table)
        topology.set_cost("r1", "r2", 5.0)
        network.link_event("r1", "r2")
        stats = redis.sync(network.routers["r0"].routing_table)
        assert stats["updated"] == 2
        assert speaker.loc_rib.get(P_R2A).attributes.med == 6

    def test_redistributed_routes_advertised_to_bgp_peer(self):
        _topology, network = ospf_three_line()
        speaker = make_speaker()
        speaker.add_peer(PeerConfig("ext", 65001, IPv4Address.parse("192.0.2.1")))
        outbox = []
        speaker.set_send_callback("ext", outbox.append)
        speaker.start_peer("ext")
        speaker.transport_connected("ext")
        speaker.receive_bytes("ext", OpenMessage(65001, 0, IPv4Address.parse("1.1.1.1")).encode())
        speaker.receive_bytes("ext", KeepaliveMessage().encode())
        redis = Redistributor(speaker, SITES, "r0")
        redis.sync(network.routers["r0"].routing_table)
        announced = set()
        meds = {}
        for packet in speaker.flush_updates("ext"):
            message = decode_message(packet)
            announced.update(message.nlri)
            for prefix in message.nlri:
                meds[prefix] = message.attributes.med
        assert announced == {P_LOCAL, P_R1, P_R2A, P_R2B}
        assert meds[P_R2A] == 2  # IGP cost carried as MED over eBGP


class TestRipAdapter:
    def test_rip_table_view(self):
        network = RipNetwork(Topology.line(3))
        network.converge()
        view = rip_table_view(network.routers["r0"])
        assert view["r1"] == (1.0, "r1")
        assert view["r2"] == (2.0, "r1")
        assert "r0" not in view

    def test_redistribution_from_rip(self):
        network = RipNetwork(Topology.line(3))
        network.converge()
        speaker = make_speaker()
        redis = Redistributor(speaker, SITES, "r0")
        stats = redis.sync(rip_table_view(network.routers["r0"]))
        assert stats["originated"] == 4
        assert speaker.loc_rib.get(P_R2B).attributes.med == 2

    def test_rip_failure_propagates_to_bgp(self):
        network = RipNetwork(Topology.line(3))
        network.converge()
        speaker = make_speaker()
        redis = Redistributor(speaker, SITES, "r0")
        redis.sync(rip_table_view(network.routers["r0"]))
        network.fail_link("r1", "r2")
        network.converge()
        stats = redis.sync(rip_table_view(network.routers["r0"]))
        assert stats["withdrawn"] == 2
        assert P_R2A not in speaker.loc_rib
