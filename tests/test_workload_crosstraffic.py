"""Unit tests for cross-traffic load descriptions."""

import pytest

from repro.workload.crosstraffic import (
    PLATFORM_MAX_MBPS,
    CrossTrafficLoad,
    sweep_levels,
)


class TestCrossTrafficLoad:
    def test_packets_per_second(self):
        load = CrossTrafficLoad(mbps=300.0, packet_bytes=1000)
        assert load.packets_per_second == pytest.approx(37500.0)

    def test_zero_rate(self):
        assert CrossTrafficLoad(0.0).packets_per_second == 0.0

    def test_capped(self):
        load = CrossTrafficLoad(1000.0)
        assert load.capped(315.0).mbps == 315.0
        assert load.capped(2000.0).mbps == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CrossTrafficLoad(-1.0)
        with pytest.raises(ValueError):
            CrossTrafficLoad(100.0, packet_bytes=0)


class TestSweepLevels:
    def test_endpoints(self):
        levels = sweep_levels("pentium3", points=6)
        assert levels[0] == 0.0
        assert levels[-1] == PLATFORM_MAX_MBPS["pentium3"]
        assert len(levels) == 6

    def test_monotonic(self):
        levels = sweep_levels("xeon", points=9)
        assert levels == sorted(levels)

    def test_platform_specific_maxima(self):
        assert sweep_levels("cisco")[-1] == 78.0
        assert sweep_levels("ixp2400")[-1] == 940.0

    def test_minimum_points(self):
        with pytest.raises(ValueError):
            sweep_levels("xeon", points=1)

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            sweep_levels("vax")
