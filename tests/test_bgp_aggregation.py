"""Tests for well-known communities and route aggregation."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes, WellKnownCommunity
from repro.bgp.messages import (
    KeepaliveMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
    iter_messages,
)
from repro.bgp.speaker import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.net.addr import IPv4Address, Prefix

ROUTER_AS = 65000
S1, S2 = "s1", "s2"
S1_AS, S2_AS = 65001, 65002
S1_ADDR = IPv4Address.parse("10.0.1.1")
S2_ADDR = IPv4Address.parse("10.0.2.1")
AGG = Prefix.parse("10.0.0.0/8")
SPECIFIC1 = Prefix.parse("10.1.0.0/16")
SPECIFIC2 = Prefix.parse("10.2.0.0/16")


def make_router():
    return BgpSpeaker(
        SpeakerConfig(
            asn=ROUTER_AS,
            bgp_identifier=IPv4Address.parse("9.9.9.9"),
            local_address=IPv4Address.parse("10.0.0.254"),
            hold_time=0.0,
        )
    )


def connect(router, peer_id, asn, addr, bgp_id, **kwargs):
    router.add_peer(PeerConfig(peer_id, asn, addr, **kwargs))
    outbox = []
    router.set_send_callback(peer_id, outbox.append)
    router.start_peer(peer_id)
    router.transport_connected(peer_id)
    router.receive_bytes(peer_id, OpenMessage(asn, 0, bgp_id).encode())
    router.receive_bytes(peer_id, KeepaliveMessage().encode())
    return outbox


def announce(router, peer_id, prefixes, path, next_hop, communities=()):
    attrs = PathAttributes(
        as_path=AsPath.from_asns(path), next_hop=next_hop, communities=communities
    )
    router.receive_bytes(
        peer_id, UpdateMessage(attributes=attrs, nlri=tuple(prefixes)).encode()
    )


def withdrawn_and_announced(packets):
    announced, withdrawn = set(), set()
    for packet in packets:
        message = decode_message(packet)
        announced.update(message.nlri)
        withdrawn.update(message.withdrawn)
    return announced, withdrawn


class TestWellKnownCommunities:
    def test_no_export_blocks_ebgp_propagation(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        announce(router, S1, [SPECIFIC1], [S1_AS], S1_ADDR,
                 communities=(int(WellKnownCommunity.NO_EXPORT),))
        assert len(router.loc_rib) == 1  # still used locally
        assert router.flush_updates(S2) == []

    def test_no_export_allows_ibgp_propagation(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, "internal", ROUTER_AS, IPv4Address.parse("10.1.0.9"),
                IPv4Address.parse("3.3.3.3"))
        announce(router, S1, [SPECIFIC1], [S1_AS], S1_ADDR,
                 communities=(int(WellKnownCommunity.NO_EXPORT),))
        assert router.flush_updates("internal")  # iBGP still receives it

    def test_no_advertise_blocks_everyone(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, "internal", ROUTER_AS, IPv4Address.parse("10.1.0.9"),
                IPv4Address.parse("3.3.3.3"))
        announce(router, S1, [SPECIFIC1], [S1_AS], S1_ADDR,
                 communities=(int(WellKnownCommunity.NO_ADVERTISE),))
        assert len(router.loc_rib) == 1
        assert router.flush_updates("internal") == []

    def test_plain_communities_do_not_block(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        announce(router, S1, [SPECIFIC1], [S1_AS], S1_ADDR,
                 communities=(ROUTER_AS << 16 | 100,))
        assert router.flush_updates(S2)


class TestAggregation:
    def test_aggregate_originates_with_contributor(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        router.configure_aggregate(AGG)
        assert AGG not in router.loc_rib  # no contributors yet
        announce(router, S1, [SPECIFIC1], [S1_AS], S1_ADDR)
        assert AGG in router.loc_rib
        route = router.loc_rib.get(AGG)
        assert route.attributes.atomic_aggregate
        assert route.attributes.aggregator.asn == ROUTER_AS

    def test_aggregate_withdrawn_with_last_contributor(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        router.configure_aggregate(AGG)
        announce(router, S1, [SPECIFIC1, SPECIFIC2], [S1_AS], S1_ADDR)
        assert AGG in router.loc_rib
        router.receive_bytes(S1, UpdateMessage(withdrawn=(SPECIFIC1,)).encode())
        assert AGG in router.loc_rib  # SPECIFIC2 still contributes
        router.receive_bytes(S1, UpdateMessage(withdrawn=(SPECIFIC2,)).encode())
        assert AGG not in router.loc_rib

    def test_aggregate_advertised_to_peers(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        router.configure_aggregate(AGG)
        announce(router, S1, [SPECIFIC1], [S1_AS], S1_ADDR)
        announced, _ = withdrawn_and_announced(router.flush_updates(S2))
        assert AGG in announced
        assert SPECIFIC1 in announced  # not summary-only: both go

    def test_summary_only_suppresses_specifics(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        router.configure_aggregate(AGG, summary_only=True)
        announce(router, S1, [SPECIFIC1], [S1_AS], S1_ADDR)
        announced, _ = withdrawn_and_announced(router.flush_updates(S2))
        assert AGG in announced
        assert SPECIFIC1 not in announced
        # The specific is still used locally for forwarding.
        assert SPECIFIC1 in router.loc_rib

    def test_session_up_transfer_respects_summary_only(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        router.configure_aggregate(AGG, summary_only=True)
        announce(router, S1, [SPECIFIC1], [S1_AS], S1_ADDR)
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        announced, _ = withdrawn_and_announced(router.flush_updates(S2))
        assert AGG in announced
        assert SPECIFIC1 not in announced

    def test_remove_aggregate(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        router.configure_aggregate(AGG)
        announce(router, S1, [SPECIFIC1], [S1_AS], S1_ADDR)
        assert AGG in router.loc_rib
        router.remove_aggregate(AGG)
        assert AGG not in router.loc_rib
        assert SPECIFIC1 in router.loc_rib

    def test_exact_match_is_not_a_contributor(self):
        """A route exactly equal to the aggregate must not trigger it."""
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        router.configure_aggregate(AGG)
        announce(router, S1, [AGG], [S1_AS], S1_ADDR)
        # The learned /8 is in the Loc-RIB but the aggregate was not
        # locally originated (no ATOMIC_AGGREGATE).
        route = router.loc_rib.get(AGG)
        assert route is not None
        assert not route.attributes.atomic_aggregate

    def test_aggregate_wire_format(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        router.configure_aggregate(AGG)
        announce(router, S1, [SPECIFIC1], [S1_AS], S1_ADDR)
        for packet in router.flush_updates(S2):
            message = decode_message(packet)
            if AGG in message.nlri:
                assert message.attributes.atomic_aggregate
                assert message.attributes.aggregator.asn == ROUTER_AS
                assert message.attributes.as_path.all_asns() == (ROUTER_AS,)
                break
        else:
            pytest.fail("aggregate not advertised")
