"""Unit tests for the UPDATE stream builders."""

import pytest

from repro.bgp.messages import UpdateMessage, decode_message
from repro.net.addr import IPv4Address
from repro.workload.tablegen import generate_table
from repro.workload.updates import LARGE_UPDATE_PREFIXES, UpdateStreamBuilder

ADDR = IPv4Address.parse("10.255.1.1")


@pytest.fixture
def builder():
    return UpdateStreamBuilder(65101, ADDR)


@pytest.fixture
def table():
    return generate_table(1203, seed=3)


class TestAnnouncements:
    def test_small_packets_one_prefix_each(self, builder, table):
        packets = builder.announcements(table, prefixes_per_update=1)
        assert len(packets) == len(table)
        first = decode_message(packets[0])
        assert isinstance(first, UpdateMessage)
        assert len(first.nlri) == 1

    def test_large_packets_batch_500(self, builder, table):
        packets = builder.announcements(table, prefixes_per_update=LARGE_UPDATE_PREFIXES)
        assert len(packets) == 3  # 500 + 500 + 203
        sizes = [len(decode_message(p).nlri) for p in packets]
        assert sizes == [500, 500, 203]

    def test_covers_whole_table_exactly_once(self, builder, table):
        packets = builder.announcements(table, prefixes_per_update=100)
        seen = []
        for packet in packets:
            seen.extend(decode_message(packet).nlri)
        assert sorted(seen) == sorted(table.prefixes())

    def test_next_hop_and_first_as(self, builder, table):
        packet = decode_message(builder.announcements(table, 1)[0])
        assert packet.attributes.next_hop == ADDR
        assert packet.attributes.as_path.first_as() == 65101

    def test_extra_hops_lengthen_path(self, builder, table):
        base = decode_message(builder.announcements(table, 1, extra_hops=0)[0])
        longer = decode_message(builder.announcements(table, 1, extra_hops=2)[0])
        shorter = decode_message(builder.announcements(table, 1, extra_hops=-2)[0])
        base_len = base.attributes.as_path.length()
        assert longer.attributes.as_path.length() == base_len + 2
        assert shorter.attributes.as_path.length() < base_len

    def test_bad_packing_rejected(self, builder, table):
        with pytest.raises(ValueError):
            builder.announcements(table, prefixes_per_update=0)


class TestWithdrawals:
    def test_small_withdrawals(self, builder, table):
        packets = builder.withdrawals(table, prefixes_per_update=1)
        assert len(packets) == len(table)
        first = decode_message(packets[0])
        assert len(first.withdrawn) == 1
        assert first.nlri == ()

    def test_large_withdrawals(self, builder, table):
        packets = builder.withdrawals(table, prefixes_per_update=500)
        sizes = [len(decode_message(p).withdrawn) for p in packets]
        assert sizes == [500, 500, 203]

    def test_covers_table(self, builder, table):
        packets = builder.withdrawals(table, prefixes_per_update=77)
        seen = []
        for packet in packets:
            seen.extend(decode_message(packet).withdrawn)
        assert sorted(seen) == sorted(table.prefixes())


class TestFlapStorm:
    def test_alternates_announce_withdraw(self, builder):
        table = generate_table(50, seed=9)
        packets = builder.flap_storm(table, rounds=4, prefixes_per_update=50)
        kinds = []
        for packet in packets:
            message = decode_message(packet)
            kinds.append("w" if message.withdrawn else "a")
        assert kinds == ["a", "w", "a", "w"]

    def test_round_count_scales_volume(self, builder):
        table = generate_table(30, seed=9)
        two = builder.flap_storm(table, rounds=2, prefixes_per_update=1)
        six = builder.flap_storm(table, rounds=6, prefixes_per_update=1)
        assert len(six) == 3 * len(two)

    def test_bad_rounds_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.flap_storm(generate_table(5), rounds=0)
