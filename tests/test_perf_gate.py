"""Unit tests for the perf budget gate and the ``bgpbench perf`` CLI."""

import json

import pytest

from repro.experiments.runner import main as bgpbench
from repro.perf import gate


def result(ops_per_s: float, ops: int = 1000) -> dict:
    return {
        "ops": ops,
        "wall_s": ops / ops_per_s,
        "ops_per_s": ops_per_s,
        "py_version": "3.12.0",
        "platform": "Linux-x86_64",
    }


RESULTS = {
    "update_decode": result(200_000.0),
    "update_decode_legacy": result(40_000.0),
    "rib_churn": result(600_000.0),
    "rib_churn_dict": result(180_000.0),
}

SPEEDUPS = [
    {"fast": "update_decode", "slow": "update_decode_legacy", "min_ratio": 2.0},
    {"fast": "rib_churn", "slow": "rib_churn_dict", "min_ratio": 1.2},
]


class TestCheck:
    def test_all_within_budget(self):
        budgets = gate.bless(RESULTS, "quick", speedups=SPEEDUPS)
        assert gate.check(RESULTS, budgets) == []

    def test_floor_violation(self):
        budgets = gate.bless(RESULTS, "quick", speedups=[])
        slow = dict(RESULTS)
        # measured/4 floor * 0.5 slack => must drop below 1/8 to trip.
        slow["update_decode"] = result(20_000.0)
        violations = gate.check(slow, budgets)
        assert [v.kind for v in violations] == ["floor"]
        assert violations[0].workload == "update_decode"
        assert "ops/s" in violations[0].detail

    def test_floor_honours_tolerance(self):
        budgets = {"floors": {"update_decode": {"min_ops_per_s": 100_000.0}}}
        measured = {"update_decode": result(60_000.0)}
        assert gate.check(measured, budgets, tolerance=0.5) == []
        assert [v.kind for v in gate.check(measured, budgets, tolerance=0.0)] == [
            "floor"
        ]

    def test_speedup_violation(self):
        budgets = {"speedups": SPEEDUPS}
        flat = dict(RESULTS)
        flat["update_decode"] = result(41_000.0)  # 1.02x over legacy
        violations = gate.check(flat, budgets, tolerance=0.0)
        assert [v.kind for v in violations] == ["speedup"]
        assert violations[0].workload == "update_decode"

    def test_missing_workloads_reported(self):
        budgets = gate.bless(RESULTS, "quick", speedups=SPEEDUPS)
        partial = {"update_decode": RESULTS["update_decode"]}
        kinds = {(v.kind, v.workload) for v in gate.check(partial, budgets)}
        assert ("missing", "rib_churn") in kinds
        assert ("missing", "update_decode") in kinds  # broken speedup pair

    def test_zero_baseline_never_divides(self):
        budgets = {"speedups": SPEEDUPS[:1]}
        degenerate = {
            "update_decode": result(1.0),
            "update_decode_legacy": {**result(1.0), "ops_per_s": 0.0},
        }
        assert gate.check(degenerate, budgets) == []


class TestBless:
    def test_floors_get_headroom(self):
        budgets = gate.bless(RESULTS, "quick", speedups=SPEEDUPS)
        assert budgets["profile"] == "quick"
        assert budgets["floors"]["update_decode"]["min_ops_per_s"] == pytest.approx(
            200_000.0 / gate.BLESS_HEADROOM
        )
        assert budgets["speedups"] == SPEEDUPS

    def test_blessed_budgets_round_trip(self, tmp_path):
        path = tmp_path / "budgets.json"
        path.write_text(json.dumps(gate.bless(RESULTS, "quick", speedups=SPEEDUPS)))
        assert gate.check(RESULTS, gate.load_budgets(path)) == []

    def test_load_rejects_non_budget_file(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"cells": {}}')
        with pytest.raises(ValueError):
            gate.load_budgets(path)


class TestCli:
    def test_quick_run_writes_results_and_passes_gate(self, tmp_path, capsys):
        output = tmp_path / "BENCH.json"
        budgets = tmp_path / "budgets.json"
        assert (
            bgpbench(
                [
                    "perf", "--quick",
                    "--output", str(output),
                    "--bless", "--budgets", str(budgets),
                ]
            )
            == 0
        )
        results = json.loads(output.read_text())
        assert set(results) >= {
            "update_decode",
            "update_decode_legacy",
            "rib_churn",
            "rib_churn_dict",
            "decision_process",
            "end_to_end",
        }
        for entry in results.values():
            assert set(entry) == {"ops", "wall_s", "ops_per_s", "py_version", "platform"}
            assert entry["ops"] > 0
        assert "speedup" in capsys.readouterr().out

        blessed = json.loads(budgets.read_text())
        assert blessed["profile"] == "quick"
        assert blessed["speedups"] == gate.DEFAULT_SPEEDUPS

    def test_check_fails_against_impossible_budgets(self, tmp_path, capsys):
        budgets = tmp_path / "budgets.json"
        budgets.write_text(
            json.dumps(
                {
                    "profile": "quick",
                    "floors": {"update_decode": {"min_ops_per_s": 1e15}},
                    "speedups": [],
                }
            )
        )
        code = bgpbench(
            ["perf", "--quick", "--check", "--budgets", str(budgets), "--tolerance", "0"]
        )
        assert code == 1
        assert "FAIL [floor] update_decode" in capsys.readouterr().out

    def test_check_missing_budget_file_is_usage_error(self, tmp_path):
        code = bgpbench(
            ["perf", "--quick", "--check", "--budgets", str(tmp_path / "nope.json")]
        )
        assert code == 2
