"""Unit tests for the Internet checksum and its incremental update."""

import struct

import pytest

from repro.net.checksum import incremental_checksum_update, internet_checksum


class TestInternetChecksum:
    def test_known_vector_rfc1071_style(self):
        # Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_empty_data(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_odd_length_padding(self):
        # Trailing byte is padded with zero on the right.
        assert internet_checksum(b"\x12") == internet_checksum(b"\x12\x00")

    def test_verification_yields_zero(self):
        header = bytearray(struct.pack("!BBHHHBBH4s4s", 0x45, 0, 20, 1, 0, 64, 6, 0,
                                       b"\x0a\x00\x00\x01", b"\x0a\x00\x00\x02"))
        checksum = internet_checksum(bytes(header))
        header[10:12] = checksum.to_bytes(2, "big")
        assert internet_checksum(bytes(header)) == 0

    def test_all_zeros(self):
        assert internet_checksum(b"\x00" * 20) == 0xFFFF

    def test_all_ones(self):
        # Sum of all-ones words folds to 0xFFFF; complement is 0.
        assert internet_checksum(b"\xff" * 20) == 0

    def test_carry_folding(self):
        # Values engineered to produce multiple carry-outs.
        data = b"\xff\xff" * 3 + b"\x00\x01"
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestIncrementalUpdate:
    def test_matches_full_recompute_for_ttl_decrement(self):
        header = bytearray(struct.pack("!BBHHHBBH4s4s", 0x45, 0, 40, 7, 0, 64, 17, 0,
                                       b"\xc6\x33\x64\x01", b"\xc6\x33\x64\x02"))
        checksum = internet_checksum(bytes(header))
        header[10:12] = checksum.to_bytes(2, "big")
        # Decrement TTL (byte 8), then compare incremental vs full.
        old_word = (header[8] << 8) | header[9]
        header[8] -= 1
        new_word = (header[8] << 8) | header[9]
        incremental = incremental_checksum_update(checksum, old_word, new_word)
        header[10:12] = b"\x00\x00"
        full = internet_checksum(bytes(header))
        assert incremental == full

    def test_no_change_is_identity(self):
        assert incremental_checksum_update(0x1234, 0x4006, 0x4006) == 0x1234

    def test_rejects_out_of_range_checksum(self):
        with pytest.raises(ValueError):
            incremental_checksum_update(0x10000, 0, 0)
        with pytest.raises(ValueError):
            incremental_checksum_update(-1, 0, 0)

    def test_rejects_out_of_range_words(self):
        with pytest.raises(ValueError):
            incremental_checksum_update(0, 0x10000, 0)
        with pytest.raises(ValueError):
            incremental_checksum_update(0, 0, -5)

    def test_rfc1624_zero_edge_case(self):
        # The case where RFC 1141 gives the wrong answer: a checksum of
        # 0xFFFF (-0) must stay correct through an update.
        # Build data whose checksum is 0xFFFF (all-zero data).
        data = bytearray(b"\x00" * 4)
        checksum = internet_checksum(bytes(data))  # 0xFFFF
        old_word = 0x0000
        new_word = 0x1234
        data[0:2] = new_word.to_bytes(2, "big")
        assert incremental_checksum_update(checksum, old_word, new_word) == \
            internet_checksum(bytes(data))
