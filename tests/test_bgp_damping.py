"""Unit tests for route-flap damping (RFC 2439)."""

import math

import pytest

from repro.bgp.damping import DampingConfig, RouteDamper
from repro.net.addr import Prefix

P = Prefix.parse("192.0.2.0/24")


def fast_config(**overrides):
    """A config with a short half-life so tests use small time spans."""
    defaults = dict(half_life=100.0, max_suppress_time=600.0)
    defaults.update(overrides)
    return DampingConfig(**defaults)


class TestConfig:
    def test_default_values_are_classic(self):
        config = DampingConfig()
        assert config.suppress_threshold == 2000.0
        assert config.reuse_threshold == 750.0
        assert config.half_life == 900.0

    def test_decay_rate_halves_at_half_life(self):
        config = fast_config()
        assert math.exp(-config.decay_rate * config.half_life) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DampingConfig(half_life=0)
        with pytest.raises(ValueError):
            DampingConfig(reuse_threshold=3000.0)
        with pytest.raises(ValueError):
            DampingConfig(max_suppress_time=-1)

    def test_penalty_ceiling_bounds_suppression(self):
        config = fast_config()
        # A route at the ceiling decays to the reuse threshold in
        # exactly max_suppress_time.
        decayed = config.penalty_ceiling * math.exp(
            -config.decay_rate * config.max_suppress_time
        )
        assert decayed == pytest.approx(config.reuse_threshold)


class TestSuppression:
    def test_single_withdrawal_not_suppressed(self):
        damper = RouteDamper(fast_config())
        assert not damper.record_withdrawal(P, now=0.0)
        assert not damper.is_suppressed(P, now=0.0)

    def test_three_quick_withdrawals_suppress(self):
        damper = RouteDamper(fast_config())
        damper.record_withdrawal(P, now=0.0)
        damper.record_readvertisement(P, now=0.5)
        assert not damper.record_withdrawal(P, now=1.0)
        damper.record_readvertisement(P, now=1.5)
        assert damper.record_withdrawal(P, now=2.0)
        assert damper.is_suppressed(P, now=2.0)
        assert damper.suppressions == 1

    def test_attribute_changes_accumulate(self):
        damper = RouteDamper(fast_config())
        for i in range(5):
            damper.record_attribute_change(P, now=float(i))
        assert damper.is_suppressed(P, now=5.0)

    def test_penalty_decays_and_route_reused(self):
        config = fast_config()
        damper = RouteDamper(config)
        damper.record_withdrawal(P, now=0.0)
        damper.record_withdrawal(P, now=1.0)
        damper.record_withdrawal(P, now=2.0)
        assert damper.is_suppressed(P, now=2.0)
        # Wait long enough for penalty to fall below the reuse threshold.
        reuse_after = damper.reuse_time(P, now=2.0)
        assert reuse_after is not None
        assert not damper.is_suppressed(P, now=2.0 + reuse_after + 0.1)
        assert damper.reuses == 1

    def test_reuse_time_none_when_not_suppressed(self):
        damper = RouteDamper(fast_config())
        assert damper.reuse_time(P, now=0.0) is None

    def test_max_suppress_time_respected(self):
        config = fast_config()
        damper = RouteDamper(config)
        # Hammer the route far past the ceiling.
        for i in range(50):
            damper.record_withdrawal(P, now=0.1 * i)
        last_flap = 0.1 * 49
        assert damper.is_suppressed(P, now=last_flap)
        reuse_after = damper.reuse_time(P, now=last_flap)
        assert reuse_after is not None
        assert reuse_after <= config.max_suppress_time + 1e-6

    def test_distinct_prefixes_independent(self):
        other = Prefix.parse("198.51.100.0/24")
        damper = RouteDamper(fast_config())
        damper.record_withdrawal(P, now=0.0)
        damper.record_withdrawal(P, now=1.0)
        damper.record_withdrawal(P, now=2.0)
        assert damper.is_suppressed(P, now=2.0)
        assert not damper.is_suppressed(other, now=2.0)

    def test_penalty_of_decays(self):
        config = fast_config()
        damper = RouteDamper(config)
        damper.record_withdrawal(P, now=0.0)
        assert damper.penalty_of(P, now=0.0) == pytest.approx(1000.0)
        assert damper.penalty_of(P, now=config.half_life) == pytest.approx(500.0)

    def test_garbage_collection(self):
        config = fast_config()
        damper = RouteDamper(config)
        damper.record_withdrawal(P, now=0.0)
        assert len(damper) == 1
        # After many half-lives the penalty is negligible: GC on query.
        assert not damper.is_suppressed(P, now=1500.0)
        assert len(damper) == 0

    def test_flap_counter(self):
        damper = RouteDamper(fast_config())
        damper.record_withdrawal(P, now=0.0)
        damper.record_readvertisement(P, now=1.0)
        damper.record_attribute_change(P, now=2.0)
        assert damper._histories[P].flaps == 3
