"""Fault-tolerant grid execution: supervisor semantics and degradation.

The resilience layer's contract has three load-bearing planks: a
fault-free supervised run is byte-identical to the plain pool runner
(so the golden gate sees no difference); injected faults degrade to
structured ``CellFailure`` records while every healthy cell completes;
and the retry schedule is a deterministic pure function, so two chaos
runs agree byte-for-byte on their attempt histories.
"""

import pytest

from repro.bgp.fsm import ReconnectBackoff
from repro.grid import (
    CellFailure,
    ChaosPlan,
    ExecutionPolicy,
    GridCache,
    GridCell,
    enumerate_grid,
    run_cell,
    run_grid,
)
from repro.grid.outcomes import (
    OUTCOME_CRASHED,
    OUTCOME_FAILED,
    OUTCOME_QUARANTINED,
    OUTCOME_TIMEOUT,
    AttemptRecord,
)

CELLS = enumerate_grid(
    scenarios=[1], platforms=["cisco", "pentium3", "xeon"], seeds=[7],
    table_sizes=[60],
)
CRASH_CELL, HEALTHY_CELL, FLAKY_CELL = (cell.cell_id for cell in CELLS)

#: Millisecond-scale backoff so retry tests don't wait on real time.
FAST_BACKOFF = ReconnectBackoff(base=0.01, multiplier=2.0, cap=0.05, jitter=0.1, seed=5)


def fast_policy(**overrides) -> ExecutionPolicy:
    overrides.setdefault("backoff", FAST_BACKOFF)
    return ExecutionPolicy(**overrides)


class TestFaultFreeByteIdentity:
    def test_supervised_run_matches_pool_runner(self):
        plain = run_grid(CELLS, workers=2)
        supervised = run_grid(
            CELLS, workers=2, policy=fast_policy(retries=2, cell_timeout=120.0)
        )
        assert supervised.ok
        assert supervised.to_json() == plain.to_json()
        assert supervised.retries == 0
        assert supervised.timeouts == 0
        assert supervised.worker_crashes == 0
        assert supervised.recovered == {}

    def test_supervised_serial_matches_supervised_pooled(self):
        serial = run_grid(CELLS, workers=1, policy=fast_policy())
        pooled = run_grid(CELLS, workers=3, policy=fast_policy())
        assert serial.to_json() == pooled.to_json()

    def test_results_stay_in_enumeration_order(self):
        report = run_grid(CELLS, workers=3, policy=fast_policy())
        assert list(report.results) == [cell.cell_id for cell in CELLS]


class TestFailureOutcomes:
    def test_crash_degrades_to_structured_failure(self):
        chaos = ChaosPlan.from_spec({CRASH_CELL: {"kind": "crash"}})
        report = run_grid(CELLS, workers=2, policy=fast_policy(), chaos=chaos)
        assert not report.ok
        failure = report.failures[CRASH_CELL]
        assert failure.outcome == OUTCOME_CRASHED
        assert "exit code 13" in failure.message
        assert report.worker_crashes == 1
        # Every healthy cell still completed.
        assert set(report.results) == {HEALTHY_CELL, FLAKY_CELL}

    def test_flaky_worker_error_is_failed_not_crashed(self):
        chaos = ChaosPlan.from_spec({FLAKY_CELL: {"kind": "flaky"}})
        report = run_grid(CELLS, workers=2, policy=fast_policy(), chaos=chaos)
        failure = report.failures[FLAKY_CELL]
        assert failure.outcome == OUTCOME_FAILED
        assert "ChaosError" in failure.message
        assert report.worker_crashes == 0

    def test_hung_cell_is_killed_at_the_timeout(self):
        chaos = ChaosPlan.from_spec({HEALTHY_CELL: {"kind": "hang", "hang_seconds": 60}})
        report = run_grid(
            CELLS, workers=2, policy=fast_policy(cell_timeout=0.75), chaos=chaos
        )
        failure = report.failures[HEALTHY_CELL]
        assert failure.outcome == OUTCOME_TIMEOUT
        assert "killed" in failure.message
        assert report.timeouts == 1
        assert set(report.results) == {CRASH_CELL, FLAKY_CELL}

    def test_failure_manifest_is_jsonable_and_sorted(self):
        chaos = ChaosPlan.from_spec({
            CRASH_CELL: {"kind": "crash"},
            FLAKY_CELL: {"kind": "flaky"},
        })
        report = run_grid(CELLS, workers=3, policy=fast_policy(), chaos=chaos)
        manifest = report.failure_manifest()
        assert list(manifest) == sorted([CRASH_CELL, FLAKY_CELL])
        entry = manifest[CRASH_CELL]
        assert entry["outcome"] == OUTCOME_CRASHED
        assert entry["attempts"][0]["attempt"] == 0


class TestDeterministicRetry:
    CHAOS = ChaosPlan.from_spec({FLAKY_CELL: {"kind": "flaky", "times": 2}})

    def test_fail_twice_then_succeed(self):
        report = run_grid(
            CELLS, workers=2, policy=fast_policy(retries=3), chaos=self.CHAOS
        )
        assert report.ok
        assert report.retries == 2
        attempts = report.recovered[FLAKY_CELL]
        assert [record["outcome"] for record in attempts] == ["failed", "failed", "ok"]

    def test_retry_budget_exhaustion_is_terminal(self):
        report = run_grid(
            CELLS, workers=2, policy=fast_policy(retries=1), chaos=self.CHAOS
        )
        failure = report.failures[FLAKY_CELL]
        assert failure.outcome == OUTCOME_FAILED
        assert len(failure.attempts) == 2

    def test_retry_schedule_is_reproducible(self):
        def delays():
            report = run_grid(
                CELLS, workers=2, policy=fast_policy(retries=3), chaos=self.CHAOS
            )
            return [
                record["retry_delay"] for record in report.recovered[FLAKY_CELL]
            ]

        first, second = delays(), delays()
        assert first == second
        # The schedule is the SessionRecovery backoff, pure in
        # (seed, attempt) — not a measured wall-clock artifact.
        assert first == [FAST_BACKOFF.delay(0), FAST_BACKOFF.delay(1), None]


class TestFailureBudget:
    CHAOS = ChaosPlan.from_spec({CRASH_CELL: {"kind": "crash"}})

    def test_max_failures_quarantines_the_rest(self):
        report = run_grid(
            CELLS, workers=1, policy=fast_policy(max_failures=1), chaos=self.CHAOS
        )
        assert report.failures[CRASH_CELL].outcome == OUTCOME_CRASHED
        for cell_id in (HEALTHY_CELL, FLAKY_CELL):
            assert report.failures[cell_id].outcome == OUTCOME_QUARANTINED
        assert report.results == {}

    def test_strict_is_first_failure_quarantine(self):
        report = run_grid(
            CELLS, workers=1, policy=fast_policy(strict=True), chaos=self.CHAOS
        )
        outcomes = {cid: f.outcome for cid, f in report.failures.items()}
        assert outcomes[CRASH_CELL] == OUTCOME_CRASHED
        assert outcomes[HEALTHY_CELL] == OUTCOME_QUARANTINED

    def test_without_budget_healthy_cells_complete(self):
        report = run_grid(CELLS, workers=1, policy=fast_policy(), chaos=self.CHAOS)
        assert set(report.results) == {HEALTHY_CELL, FLAKY_CELL}


class TestMetricsPublication:
    def test_counters_published_to_registry(self):
        from repro.telemetry import MetricRegistry

        registry = MetricRegistry()
        chaos = ChaosPlan.from_spec({FLAKY_CELL: {"kind": "flaky", "times": 1}})
        report = run_grid(
            CELLS, workers=2, policy=fast_policy(retries=2), chaos=chaos,
            registry=registry,
        )
        assert report.ok
        assert registry.get("grid_retries").value() == 1
        assert registry.get("grid_timeouts").value() == 0
        assert registry.get("grid_worker_crashes").value() == 0
        assert registry.get("grid_cells").value(outcome="ok") == 3
        assert registry.get("grid_cells").value(outcome="crashed") == 0

    def test_counters_cover_failures(self):
        from repro.telemetry import MetricRegistry

        registry = MetricRegistry()
        chaos = ChaosPlan.from_spec({CRASH_CELL: {"kind": "crash"}})
        run_grid(
            CELLS, workers=2, policy=fast_policy(), chaos=chaos, registry=registry
        )
        assert registry.get("grid_worker_crashes").value() == 1
        assert registry.get("grid_cells").value(outcome="crashed") == 1
        assert registry.get("grid_cells").value(outcome="ok") == 2


class _UnwritableCache(GridCache):
    def put(self, cell, result):
        raise OSError(28, "No space left on device")


class TestGracefulDegradation:
    def test_cache_put_failure_degrades_to_warning(self, tmp_path):
        cache = _UnwritableCache(tmp_path / "cache", fingerprint="fp")
        with pytest.warns(RuntimeWarning, match="executed but not cached"):
            report = run_grid(CELLS[:1], workers=1, cache=cache)
        assert report.ok
        assert list(report.results) == [CELLS[0].cell_id]
        assert CELLS[0].cell_id in report.uncached

    def test_cache_put_failure_degrades_on_supervised_path(self, tmp_path):
        cache = _UnwritableCache(tmp_path / "cache", fingerprint="fp")
        with pytest.warns(RuntimeWarning, match="executed but not cached"):
            report = run_grid(CELLS[:1], workers=1, cache=cache, policy=fast_policy())
        assert report.ok and CELLS[0].cell_id in report.uncached

    def test_raising_progress_callback_cannot_kill_the_run(self):
        def bad_progress(cell_id, cached):
            raise RuntimeError("progress handler bug")

        with pytest.warns(RuntimeWarning, match="progress callback failed"):
            report = run_grid(CELLS[:2], workers=1, progress=bad_progress)
        assert report.ok
        assert len(report.results) == 2

    def test_well_behaved_progress_sees_every_terminal_outcome(self):
        chaos = ChaosPlan.from_spec({CRASH_CELL: {"kind": "crash"}})
        seen = []
        report = run_grid(
            CELLS, workers=1, policy=fast_policy(), chaos=chaos,
            progress=lambda cell_id, cached: seen.append(cell_id),
        )
        assert not report.ok
        assert sorted(seen) == sorted(cell.cell_id for cell in CELLS)


class TestWorkerAccounting:
    def test_workers_clamped_to_pending_cells(self):
        report = run_grid(CELLS[:2], workers=8)
        assert report.workers == 2

    def test_workers_zero_when_everything_cached(self, tmp_path):
        cache = GridCache(tmp_path / "cache", fingerprint="fp")
        run_grid(CELLS[:1], workers=4, cache=cache)
        warm = run_grid(CELLS[:1], workers=4, cache=cache)
        assert warm.hits == 1
        assert warm.workers == 0


class TestCellDiagnostics:
    def test_stall_error_carries_cell_id(self, monkeypatch):
        from repro.benchmark.harness import StallError

        class _Diagnostics:
            def describe(self):
                return "no forward progress"

        def stall(*args, **kwargs):
            raise StallError(_Diagnostics())

        monkeypatch.setattr("repro.grid.cells.run_scenario", stall)
        cell = GridCell(1, "pentium3", 7, 60)
        with pytest.raises(StallError) as info:
            run_cell(cell)
        assert info.value.cell_id == cell.cell_id
        assert cell.cell_id in str(info.value)

    def test_sanitizer_error_carries_cell_id(self, monkeypatch):
        from repro.analysis.sanitizer import SanitizerError

        def violate(*args, **kwargs):
            raise SanitizerError("clock", "time ran backwards", 1.0, [])

        monkeypatch.setattr("repro.grid.cells.run_scenario", violate)
        cell = GridCell(1, "cisco", 7, 60)
        with pytest.raises(SanitizerError) as info:
            run_cell(cell)
        assert info.value.cell_id == cell.cell_id


class TestOutcomeRecords:
    def test_attempt_record_rejects_unknown_outcome(self):
        with pytest.raises(ValueError):
            AttemptRecord(0, "mysterious")

    def test_cell_failure_rejects_success_outcome(self):
        with pytest.raises(ValueError):
            CellFailure("c", "ok")

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(cell_timeout=0.0)
        with pytest.raises(ValueError):
            ExecutionPolicy(retries=-1)
        with pytest.raises(ValueError):
            ExecutionPolicy(max_failures=0)

    def test_strict_failure_budget(self):
        assert ExecutionPolicy(strict=True).failure_budget == 1
        assert ExecutionPolicy(max_failures=4).failure_budget == 4
        assert ExecutionPolicy().failure_budget is None
