"""Unit tests for the text reporting helpers."""

from repro.benchmark.report import format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            "Title",
            ["A", "B"],
            [("row1", [1.0, 2.5]), ("row2", [3.0, 4.0])],
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "A" in lines[2] and "B" in lines[2]
        assert "row1" in text and "2.5" in text

    def test_string_values_pass_through(self):
        text = format_table("T", ["X"], [("r", ["1.0/2"])])
        assert "1.0/2" in text

    def test_row_alignment(self):
        text = format_table("T", ["X"], [("short", [1.0]), ("much-longer-label", [2.0])])
        data_lines = [l for l in text.splitlines() if "|" in l and "X" not in l]
        pipes = [line.index("|") for line in data_lines]
        assert len(set(pipes)) == 1  # all rows align


class TestFormatSeries:
    def test_renders_each_series(self):
        text = format_series(
            "CPU",
            {"xorp_bgp": [(0.0, 50.0), (1.0, 75.0)], "xorp_rib": [(0.0, 25.0)]},
        )
        assert "xorp_bgp" in text
        assert "xorp_rib" in text
        assert "0s:50%" in text

    def test_empty_series_skipped(self):
        text = format_series("CPU", {"idle": []})
        assert "idle" not in text

    def test_downsampling(self):
        points = [(float(t), 1.0) for t in range(200)]
        text = format_series("CPU", {"t": points}, max_points=10)
        rendered_points = text.splitlines()[1].count("%")
        assert rendered_points <= 21
