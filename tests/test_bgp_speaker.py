"""Integration-level unit tests for the full BGP speaker."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.fsm import State
from repro.bgp.messages import (
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
    iter_messages,
)
from repro.bgp.policy import Action, Match, Policy, PolicyResult, Rule
from repro.bgp.speaker import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.forwarding.fib import Fib
from repro.net.addr import IPv4Address, Prefix

ROUTER_AS = 65000
S1, S2 = "s1", "s2"
S1_AS, S2_AS = 65001, 65002
S1_ADDR = IPv4Address.parse("10.0.1.1")
S2_ADDR = IPv4Address.parse("10.0.2.1")
P1 = Prefix.parse("192.0.2.0/24")
P2 = Prefix.parse("198.51.100.0/24")


def make_router(fib=None, **peer_policy):
    router = BgpSpeaker(
        SpeakerConfig(
            asn=ROUTER_AS,
            bgp_identifier=IPv4Address.parse("9.9.9.9"),
            local_address=IPv4Address.parse("10.0.0.254"),
            hold_time=0.0,
        ),
        fib=fib,
    )
    return router


def connect(router, peer_id, asn, addr, bgp_id, **kwargs):
    router.add_peer(PeerConfig(peer_id, asn, addr, **kwargs))
    outbox = []
    router.set_send_callback(peer_id, outbox.append)
    router.start_peer(peer_id)
    router.transport_connected(peer_id)
    router.receive_bytes(peer_id, OpenMessage(asn, 0, bgp_id).encode())
    router.receive_bytes(peer_id, KeepaliveMessage().encode())
    assert router.peers[peer_id].established
    return outbox


def announce(router, peer_id, prefixes, path, next_hop):
    attrs = PathAttributes(as_path=AsPath.from_asns(path), next_hop=next_hop)
    update = UpdateMessage(attributes=attrs, nlri=tuple(prefixes))
    router.receive_bytes(peer_id, update.encode())


def withdraw(router, peer_id, prefixes):
    router.receive_bytes(peer_id, UpdateMessage(withdrawn=tuple(prefixes)).encode())


class TestSessionLifecycle:
    def test_handshake_establishes(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        assert router.session_events() == [(S1, "up")]

    def test_duplicate_peer_rejected(self):
        router = make_router()
        router.add_peer(PeerConfig(S1, S1_AS, S1_ADDR))
        with pytest.raises(ValueError):
            router.add_peer(PeerConfig(S1, S1_AS, S1_ADDR))

    def test_notification_tears_session_and_flushes_routes(self):
        fib = Fib()
        router = make_router(fib=fib)
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        assert len(fib) == 1
        router.receive_bytes(S1, NotificationMessage(6, 2).encode())
        assert router.peers[S1].fsm.state is State.IDLE
        assert len(fib) == 0
        assert len(router.loc_rib) == 0

    def test_remove_peer_flushes(self):
        fib = Fib()
        router = make_router(fib=fib)
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        router.remove_peer(S1)
        assert len(fib) == 0
        assert S1 not in router.peers


class TestAnnouncementProcessing:
    def test_announce_installs_route(self):
        fib = Fib()
        router = make_router(fib=fib)
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        announce(router, S1, [P1, P2], [S1_AS, 300], S1_ADDR)
        assert len(router.loc_rib) == 2
        assert fib.next_hop_for(P1) == S1_ADDR
        assert router.work.prefixes_announced == 2
        assert router.work.fib_adds == 2

    def test_withdraw_removes_route(self):
        fib = Fib()
        router = make_router(fib=fib)
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        withdraw(router, S1, [P1])
        assert len(router.loc_rib) == 0
        assert len(fib) == 0
        assert router.work.prefixes_withdrawn == 1
        assert router.work.fib_deletes == 1

    def test_withdraw_unknown_prefix_harmless(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        withdraw(router, S1, [P1])
        assert len(router.loc_rib) == 0

    def test_longer_path_does_not_replace(self):
        fib = Fib()
        router = make_router(fib=fib)
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR)
        work_before = router.work.snapshot()
        announce(router, S2, [P1], [S2_AS, 300, 301, 302], S2_ADDR)
        assert router.loc_rib.get(P1).peer_id == S1
        assert fib.next_hop_for(P1) == S1_ADDR
        assert router.work.fib_replaces == work_before.fib_replaces  # unchanged

    def test_shorter_path_replaces_and_updates_fib(self):
        fib = Fib()
        router = make_router(fib=fib)
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        announce(router, S1, [P1], [S1_AS, 300, 301], S1_ADDR)
        announce(router, S2, [P1], [S2_AS, 300], S2_ADDR)
        assert router.loc_rib.get(P1).peer_id == S2
        assert fib.next_hop_for(P1) == S2_ADDR
        assert router.work.fib_replaces == 1

    def test_loop_detection_drops_routes_with_own_as(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        announce(router, S1, [P1], [S1_AS, ROUTER_AS, 300], S1_ADDR)
        assert len(router.loc_rib) == 0
        # Still counted as processed transactions.
        assert router.work.prefixes_announced == 1

    def test_identical_reannouncement_is_cheap(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        decisions_before = router.work.decisions
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        assert router.work.decisions == decisions_before  # no re-decision

    def test_withdraw_falls_back_to_second_best(self):
        fib = Fib()
        router = make_router(fib=fib)
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR)
        announce(router, S2, [P1], [S2_AS, 300, 301], S2_ADDR)
        withdraw(router, S1, [P1])
        assert router.loc_rib.get(P1).peer_id == S2
        assert fib.next_hop_for(P1) == S2_ADDR

    def test_malformed_update_tears_down_session(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        # UPDATE with NLRI but empty attributes: missing mandatory.
        body = (0).to_bytes(2, "big") + (0).to_bytes(2, "big") + b"\x18\xc0\x00\x02"
        from repro.bgp.messages import MARKER
        wire = MARKER + (19 + len(body)).to_bytes(2, "big") + b"\x02" + body
        router.receive_bytes(S1, wire)
        assert router.peers[S1].fsm.state is State.IDLE


class TestExportPath:
    def test_route_propagates_to_other_peer(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        out2 = connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR)
        handshake_msgs = len(out2)
        packets = router.flush_updates(S2)
        assert len(packets) == 1
        update = decode_message(packets[0])
        assert update.nlri == (P1,)
        # eBGP export: our AS prepended, next hop rewritten, no LOCAL_PREF.
        assert update.attributes.as_path.all_asns() == (ROUTER_AS, S1_AS, 300)
        assert update.attributes.next_hop == router.config.local_address
        assert update.attributes.local_pref is None
        assert len(out2) == handshake_msgs + 1

    def test_no_export_back_to_learned_peer(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        assert router.flush_updates(S1) == []

    def test_withdraw_propagates(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        router.flush_updates(S2)
        withdraw(router, S1, [P1])
        packets = router.flush_updates(S2)
        assert len(packets) == 1
        assert decode_message(packets[0]).withdrawn == (P1,)

    def test_session_up_stages_existing_table(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        announce(router, S1, [P1, P2], [S1_AS], S1_ADDR)
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        packets = router.flush_updates(S2)
        announced = set()
        for packet in packets:
            announced.update(decode_message(packet).nlri)
        assert announced == {P1, P2}

    def test_flush_packing_groups_by_attributes(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        announce(router, S1, [P1, P2], [S1_AS, 300], S1_ADDR)
        packets = router.flush_updates(S2, max_prefixes=500)
        assert len(packets) == 1  # same attributes -> one UPDATE
        assert set(decode_message(packets[0]).nlri) == {P1, P2}

    def test_flush_respects_max_prefixes(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"))
        prefixes = [Prefix.parse(f"10.{i}.0.0/16") for i in range(10)]
        announce(router, S1, prefixes, [S1_AS], S1_ADDR)
        packets = router.flush_updates(S2, max_prefixes=3)
        sizes = [len(decode_message(p).nlri) for p in packets]
        assert sorted(sizes, reverse=True) == [3, 3, 3, 1]


class TestPolicies:
    def test_import_reject_blocks_route(self):
        reject_666 = Policy([Rule(Match(as_in_path=666), PolicyResult.REJECT)])
        router = make_router()
        router.add_peer(PeerConfig(S1, S1_AS, S1_ADDR, import_policy=reject_666))
        router.set_send_callback(S1, lambda data: None)
        router.start_peer(S1)
        router.transport_connected(S1)
        router.receive_bytes(S1, OpenMessage(S1_AS, 0, IPv4Address.parse("1.1.1.1")).encode())
        router.receive_bytes(S1, KeepaliveMessage().encode())
        announce(router, S1, [P1], [S1_AS, 666], S1_ADDR)
        assert len(router.loc_rib) == 0

    def test_import_reject_withdraws_previously_accepted(self):
        flip = Policy([Rule(Match(as_in_path=666), PolicyResult.REJECT)])
        router = make_router()
        router.add_peer(PeerConfig(S1, S1_AS, S1_ADDR, import_policy=flip))
        router.set_send_callback(S1, lambda data: None)
        router.start_peer(S1)
        router.transport_connected(S1)
        router.receive_bytes(S1, OpenMessage(S1_AS, 0, IPv4Address.parse("1.1.1.1")).encode())
        router.receive_bytes(S1, KeepaliveMessage().encode())
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR)
        assert len(router.loc_rib) == 1
        # Re-announce through the rejecting path: implicit withdraw.
        announce(router, S1, [P1], [S1_AS, 666], S1_ADDR)
        assert len(router.loc_rib) == 0

    def test_import_action_modifies_attributes(self):
        prefer = Policy([Rule(Match(), PolicyResult.ACCEPT, Action(set_local_pref=300))])
        router = make_router()
        router.add_peer(PeerConfig(S1, S1_AS, S1_ADDR, import_policy=prefer))
        router.set_send_callback(S1, lambda data: None)
        router.start_peer(S1)
        router.transport_connected(S1)
        router.receive_bytes(S1, OpenMessage(S1_AS, 0, IPv4Address.parse("1.1.1.1")).encode())
        router.receive_bytes(S1, KeepaliveMessage().encode())
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        assert router.loc_rib.get(P1).attributes.local_pref == 300

    def test_export_reject_blocks_advertisement(self):
        reject_all_out = Policy(default=PolicyResult.REJECT)
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        router.add_peer(PeerConfig(S2, S2_AS, S2_ADDR, export_policy=reject_all_out))
        router.set_send_callback(S2, lambda data: None)
        router.start_peer(S2)
        router.transport_connected(S2)
        router.receive_bytes(S2, OpenMessage(S2_AS, 0, IPv4Address.parse("2.2.2.2")).encode())
        router.receive_bytes(S2, KeepaliveMessage().encode())
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        assert router.flush_updates(S2) == []


class TestLocalOrigination:
    def test_originate_and_withdraw(self):
        fib = Fib()
        router = make_router(fib=fib)
        router.originate(P1)
        assert len(router.loc_rib) == 1
        assert fib.next_hop_for(P1) == router.config.local_address
        router.withdraw_local(P1)
        assert len(router.loc_rib) == 0

    def test_local_route_competes_with_learned(self):
        router = make_router()
        router.originate(P1)  # empty AS path: length 0, wins on path length
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        assert router.loc_rib.get(P1).peer_id == "<local>"

    def test_local_route_advertised_on_session_up(self):
        router = make_router()
        router.originate(P1)
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        packets = router.flush_updates(S1)
        assert len(packets) == 1
        update = decode_message(packets[0])
        assert update.nlri == (P1,)
        assert update.attributes.as_path.all_asns() == (ROUTER_AS,)


class TestWorkAccounting:
    def test_take_work_resets(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        work = router.take_work()
        assert work.transactions == 1
        assert router.work.transactions == 0

    def test_transactions_counts_both_directions(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        announce(router, S1, [P1, P2], [S1_AS], S1_ADDR)
        withdraw(router, S1, [P1])
        assert router.work.transactions == 3

    def test_bytes_accounting(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        before = router.work.bytes_received
        announce(router, S1, [P1], [S1_AS], S1_ADDR)
        assert router.work.bytes_received > before

    def test_worklog_add(self):
        from repro.bgp.speaker import WorkLog

        a = WorkLog(prefixes_announced=2, fib_adds=1)
        b = WorkLog(prefixes_announced=3, fib_deletes=2)
        a.add(b)
        assert a.prefixes_announced == 5
        assert a.fib_adds == 1
        assert a.fib_deletes == 2
        assert a.transactions == 5
        assert a.fib_changes == 3
