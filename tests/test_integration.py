"""End-to-end integration tests: full scenarios on every platform, and
cross-cutting invariants the benchmark relies on."""

import pytest

from repro.benchmark import SCENARIOS, run_scenario
from repro.benchmark.harness import SPEAKER1, SPEAKER2
from repro.experiments.paperdata import PLATFORM_ORDER
from repro.forwarding.pipeline import ForwardAction, ForwardingPipeline
from repro.net.addr import IPv4Address
from repro.net.packet import IPv4Packet
from repro.systems import build_system
from repro.workload.tablegen import generate_table

SIZE = 200


@pytest.mark.parametrize("platform", PLATFORM_ORDER)
@pytest.mark.parametrize("scenario", range(1, 9))
def test_every_cell_of_the_grid_runs(platform, scenario):
    """All 32 platform x scenario combinations produce a sane result."""
    result = run_scenario(build_system(platform), scenario, table_size=100)
    assert result.transactions == 100
    assert result.duration > 0
    expected_fib = 0 if SCENARIOS[scenario].update_type == "WITHDRAW" else 100
    assert result.fib_size_after == expected_fib


class TestControlDataPlaneConsistency:
    def test_fib_forwards_to_announced_next_hops(self):
        """After a benchmark run the FIB actually forwards packets to
        the speakers' next hops — control plane feeding data plane."""
        router = build_system("pentium3")
        table = generate_table(SIZE, seed=8)
        run_scenario(router, 1, table=table)
        pipeline = ForwardingPipeline(router.fib)
        hits = 0
        for entry in table.entries[:50]:
            packet = IPv4Packet(
                source=IPv4Address.parse("8.8.8.8"),
                destination=entry.prefix.first_address(),
            )
            packet.encode()
            result = pipeline.forward(packet)
            # Some generated prefixes nest, so the LPM winner can be a
            # different table entry — but every destination must resolve.
            assert result.action is ForwardAction.FORWARDED
            hits += 1
        assert hits == 50

    def test_scenario7_fib_next_hops_moved_to_speaker2(self):
        from repro.benchmark.harness import SPEAKER2_ADDR

        router = build_system("pentium3")
        table = generate_table(SIZE, seed=8)
        run_scenario(router, 7, table=table)
        for _prefix, next_hop in router.fib.routes():
            assert next_hop == SPEAKER2_ADDR

    def test_scenario5_fib_next_hops_stay_speaker1(self):
        from repro.benchmark.harness import SPEAKER1_ADDR

        router = build_system("pentium3")
        run_scenario(router, 5, table_size=SIZE)
        for _prefix, next_hop in router.fib.routes():
            assert next_hop == SPEAKER1_ADDR


class TestAdjRibConsistency:
    def test_scenario5_adj_ribs_hold_both_views(self):
        router = build_system("pentium3")
        run_scenario(router, 5, table_size=SIZE)
        assert len(router.speaker.peers[SPEAKER1].adj_rib_in) == SIZE
        assert len(router.speaker.peers[SPEAKER2].adj_rib_in) == SIZE
        assert len(router.speaker.loc_rib) == SIZE

    def test_scenario3_all_ribs_empty(self):
        router = build_system("pentium3")
        run_scenario(router, 3, table_size=SIZE)
        assert len(router.speaker.peers[SPEAKER1].adj_rib_in) == 0
        assert len(router.speaker.loc_rib) == 0

    def test_router_advertises_to_speaker2_in_phase2(self):
        """Phase 2: the initial table transfer reaches Speaker 2's wire."""
        from repro.bgp.messages import UpdateMessage, iter_messages

        router = build_system("pentium3")
        run_scenario(router, 5, table_size=SIZE)
        announced = set()
        for packet in router.outboxes[SPEAKER2]:
            for message, _length in iter_messages(packet):
                if isinstance(message, UpdateMessage):
                    announced.update(message.nlri)
        assert len(announced) == SIZE

    def test_scenario7_re_advertises_replacement_to_speaker1(self):
        from repro.bgp.messages import UpdateMessage, iter_messages

        router = build_system("pentium3")
        run_scenario(router, 7, table_size=SIZE)
        replaced = set()
        for packet in router.outboxes[SPEAKER1]:
            for message, _length in iter_messages(packet):
                if isinstance(message, UpdateMessage):
                    replaced.update(message.nlri)
        assert len(replaced) == SIZE


class TestVirtualTimeInvariants:
    def test_work_conservation_on_uni_core(self):
        """On a single core, elapsed virtual time >= total CPU charged,
        and utilisation is near 100% while saturated."""
        router = build_system("pentium3")
        result = run_scenario(router, 1, table_size=SIZE)
        monitor = router.cpu_monitor
        total_cpu = sum(
            monitor.total_cpu_seconds(name) for name in monitor.task_names()
        )
        elapsed = result.phases[-1].end
        assert total_cpu <= elapsed * 1.001
        assert total_cpu >= 0.95 * elapsed  # saturated the whole run

    def test_tps_independent_of_table_size(self):
        """Per-prefix cost is constant, so tps barely moves with size."""
        small = run_scenario(build_system("pentium3"), 1, table_size=100)
        large = run_scenario(build_system("pentium3"), 1, table_size=800)
        assert small.transactions_per_second == pytest.approx(
            large.transactions_per_second, rel=0.05
        )

    def test_same_seed_same_virtual_timeline(self):
        a = run_scenario(build_system("ixp2400"), 4, table_size=SIZE, seed=3)
        b = run_scenario(build_system("ixp2400"), 4, table_size=SIZE, seed=3)
        assert [(p.start, p.end) for p in a.phases] == [(p.start, p.end) for p in b.phases]
