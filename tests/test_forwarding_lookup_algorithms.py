"""Tests for the survey lookup schemes (multibit table, binary search on
lengths): unit behaviour plus equivalence with the reference tries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forwarding.lengthsearch import LengthSearchTable
from repro.forwarding.multibit import MultibitTable
from repro.forwarding.trie import BinaryTrie
from repro.net.addr import IPv4Address, Prefix

ALL_CLASSES = [BinaryTrie, MultibitTable, LengthSearchTable]

ROUTES = [
    ("0.0.0.0/0", "default"),
    ("10.0.0.0/8", "ten"),
    ("10.1.0.0/16", "ten-one"),
    ("10.1.2.0/24", "ten-one-two"),
    ("10.1.2.77/32", "host"),
    ("192.0.2.0/24", "doc"),
    ("192.0.2.128/25", "doc-upper"),
]


@pytest.fixture(params=[MultibitTable, LengthSearchTable],
                ids=["multibit", "lengthsearch"])
def table(request):
    return request.param()


def load(table):
    for text, value in ROUTES:
        table.insert(Prefix.parse(text), value)
    return table


class TestBasics:
    def test_insert_and_len(self, table):
        load(table)
        assert len(table) == len(ROUTES)

    def test_reinsert_not_new(self, table):
        prefix = Prefix.parse("10.0.0.0/8")
        assert table.insert(prefix, "a") is True
        assert table.insert(prefix, "b") is False
        assert table.exact(prefix) == "b"

    def test_lookup_cases(self, table):
        load(table)
        cases = [
            ("10.1.2.77", "host"),
            ("10.1.2.3", "ten-one-two"),
            ("10.1.9.9", "ten-one"),
            ("10.9.9.9", "ten"),
            ("192.0.2.1", "doc"),
            ("192.0.2.200", "doc-upper"),
            ("8.8.8.8", "default"),
        ]
        for address, expected in cases:
            hit = table.lookup(IPv4Address.parse(address))
            assert hit is not None and hit[1] == expected, address

    def test_miss_without_default(self, table):
        table.insert(Prefix.parse("10.0.0.0/8"), "ten")
        assert table.lookup(IPv4Address.parse("11.0.0.0")) is None

    def test_remove(self, table):
        load(table)
        assert table.remove(Prefix.parse("10.1.0.0/16")) is True
        assert table.remove(Prefix.parse("10.1.0.0/16")) is False
        assert table.lookup(IPv4Address.parse("10.1.9.9"))[1] == "ten"
        assert table.lookup(IPv4Address.parse("10.1.2.3"))[1] == "ten-one-two"

    def test_remove_exposes_covering_route(self, table):
        load(table)
        table.remove(Prefix.parse("10.1.2.77/32"))
        assert table.lookup(IPv4Address.parse("10.1.2.77"))[1] == "ten-one-two"

    def test_items(self, table):
        load(table)
        assert dict(table.items()) == {Prefix.parse(t): v for t, v in ROUTES}

    def test_empty(self, table):
        assert table.lookup(IPv4Address.parse("1.2.3.4")) is None
        assert len(table) == 0


class TestMultibitSpecifics:
    def test_split_validation(self):
        with pytest.raises(ValueError):
            MultibitTable(first_level_bits=0)
        with pytest.raises(ValueError):
            MultibitTable(first_level_bits=25)

    def test_short_prefix_direct_slots(self):
        table = MultibitTable(first_level_bits=16)
        table.insert(Prefix.parse("10.0.0.0/8"), "ten")
        # 2^8 slots get direct entries; no chunks needed.
        assert table.lookup(IPv4Address.parse("10.200.0.1"))[1] == "ten"
        assert not table._long

    def test_long_prefix_creates_chunk(self):
        table = MultibitTable(first_level_bits=16)
        table.insert(Prefix.parse("10.0.0.0/8"), "ten")
        table.insert(Prefix.parse("10.1.2.0/24"), "deep")
        assert table.lookup(IPv4Address.parse("10.1.2.9"))[1] == "deep"
        assert table.lookup(IPv4Address.parse("10.1.3.9"))[1] == "ten"

    def test_alternate_split(self):
        table = MultibitTable(first_level_bits=12)
        table.insert(Prefix.parse("10.1.2.0/24"), "deep")
        table.insert(Prefix.parse("10.0.0.0/8"), "ten")
        assert table.lookup(IPv4Address.parse("10.1.2.9"))[1] == "deep"
        assert table.lookup(IPv4Address.parse("10.250.0.1"))[1] == "ten"

    def test_boundary_length_equal_to_split(self):
        table = MultibitTable(first_level_bits=16)
        table.insert(Prefix.parse("10.1.0.0/16"), "exact-split")
        assert table.lookup(IPv4Address.parse("10.1.200.1"))[1] == "exact-split"


class TestLengthSearchSpecifics:
    def test_lazy_rebuild(self):
        table = LengthSearchTable()
        table.insert(Prefix.parse("10.0.0.0/8"), "ten")
        assert table.rebuilds == 0
        table.lookup(IPv4Address.parse("10.0.0.1"))
        assert table.rebuilds == 1
        table.lookup(IPv4Address.parse("10.0.0.2"))
        assert table.rebuilds == 1  # no mutation, no rebuild

    def test_probe_count_logarithmic(self):
        table = LengthSearchTable()
        for length in (8, 12, 16, 20, 24, 28, 32):
            network = 10 << 24
            table.insert(Prefix.from_address(IPv4Address(network), length), length)
        table.lookup(IPv4Address.parse("10.0.0.0"))
        first_probes = table.probes
        assert first_probes <= 3  # ceil(log2(7)) = 3 probes for 7 levels

    def test_marker_led_search_recovers_best_match(self):
        """A marker points toward a longer prefix that does not match
        the query; the precomputed best match must still win."""
        table = LengthSearchTable()
        table.insert(Prefix.parse("10.0.0.0/8"), "short")
        table.insert(Prefix.parse("10.1.2.128/25"), "long")
        # 10.1.2.0 matches the /8 and the markers of the /25 path down
        # to /24-ish truncations, but not the /25 itself.
        hit = table.lookup(IPv4Address.parse("10.1.2.0"))
        assert hit == (Prefix.parse("10.0.0.0/8"), "short")


class TestFourWayEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.tuples(
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                st.integers(min_value=8, max_value=32),
            ).map(lambda t: Prefix.from_address(IPv4Address(t[0]), t[1])),
            st.integers(),
            max_size=25,
        ),
        st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=15),
    )
    def test_all_structures_agree(self, routes, probes):
        structures = [cls() for cls in ALL_CLASSES]
        for prefix, value in routes.items():
            for structure in structures:
                structure.insert(prefix, value)
        for probe in probes:
            results = [structure.lookup(IPv4Address(probe)) for structure in structures]
            assert all(result == results[0] for result in results), probe

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.tuples(
                    st.integers(min_value=0, max_value=0xFFFFFFFF),
                    st.integers(min_value=8, max_value=32),
                ).map(lambda t: Prefix.from_address(IPv4Address(t[0]), t[1])),
                st.booleans(),
            ),
            max_size=40,
        ),
        st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=10),
    )
    def test_agreement_under_mixed_mutations(self, operations, probes):
        structures = [cls() for cls in ALL_CLASSES]
        for prefix, is_insert in operations:
            outcomes = set()
            for structure in structures:
                if is_insert:
                    outcomes.add(("i", structure.insert(prefix, prefix.network)))
                else:
                    outcomes.add(("r", structure.remove(prefix)))
            assert len(outcomes) == 1  # all agree on is_new / removed
        reference = dict(structures[0].items())
        for structure in structures[1:]:
            assert dict(structure.items()) == reference
        for probe in probes:
            results = [structure.lookup(IPv4Address(probe)) for structure in structures]
            assert all(result == results[0] for result in results)
