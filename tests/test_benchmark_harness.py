"""Integration tests for the two-speaker/three-phase benchmark harness."""

import pytest

from repro.benchmark import run_scenario
from repro.benchmark.harness import SPEAKER1, SPEAKER2, PhaseTrace
from repro.systems import build_system
from repro.workload.tablegen import generate_table

SIZE = 300


class TestPhaseStructure:
    def test_startup_scenario_measures_phase1(self):
        result = run_scenario(build_system("pentium3"), 1, table_size=SIZE)
        assert [p.phase for p in result.phases] == [1]
        assert result.phases[0].transactions == SIZE
        assert result.transactions == SIZE

    def test_ending_scenario_runs_phases_1_and_3(self):
        result = run_scenario(build_system("pentium3"), 3, table_size=SIZE)
        assert [p.phase for p in result.phases] == [1, 3]
        assert result.phases[1].transactions == SIZE

    def test_incremental_scenarios_run_all_phases(self):
        result = run_scenario(build_system("pentium3"), 5, table_size=SIZE)
        assert [p.phase for p in result.phases] == [1, 2, 3]

    def test_phases_are_contiguous_and_ordered(self):
        result = run_scenario(build_system("pentium3"), 7, table_size=SIZE)
        for earlier, later in zip(result.phases, result.phases[1:]):
            assert later.start >= earlier.end

    def test_measured_phase_duration_positive(self):
        for scenario in range(1, 9):
            result = run_scenario(build_system("pentium3"), scenario, table_size=50)
            assert result.duration > 0, scenario
            assert result.transactions_per_second > 0, scenario


class TestFinalState:
    def test_scenario1_fills_fib(self):
        result = run_scenario(build_system("pentium3"), 1, table_size=SIZE)
        assert result.fib_size_after == SIZE

    def test_scenario3_empties_fib(self):
        result = run_scenario(build_system("pentium3"), 3, table_size=SIZE)
        assert result.fib_size_after == 0

    def test_scenario5_keeps_fib_full(self):
        result = run_scenario(build_system("pentium3"), 5, table_size=SIZE)
        assert result.fib_size_after == SIZE

    def test_scenario7_keeps_fib_full_after_replace(self):
        result = run_scenario(build_system("pentium3"), 7, table_size=SIZE)
        assert result.fib_size_after == SIZE

    def test_scenario7_routes_point_at_speaker2(self):
        """After the replace phase every best route is Speaker 2's."""
        router = build_system("pentium3")
        run_scenario(router, 7, table_size=SIZE)
        for route in router.speaker.loc_rib.routes():
            assert route.peer_id == SPEAKER2

    def test_scenario5_routes_still_point_at_speaker1(self):
        router = build_system("pentium3")
        run_scenario(router, 5, table_size=SIZE)
        for route in router.speaker.loc_rib.routes():
            assert route.peer_id == SPEAKER1

    def test_reused_router_rejected(self):
        router = build_system("pentium3")
        run_scenario(router, 1, table_size=50)
        with pytest.raises(ValueError):
            run_scenario(router, 1, table_size=50)


class TestMetric:
    def test_tps_is_transactions_over_duration(self):
        result = run_scenario(build_system("pentium3"), 1, table_size=SIZE)
        assert result.transactions_per_second == pytest.approx(
            result.transactions / result.duration
        )

    def test_setup_time_excluded(self):
        """Scenario 3's metric covers only Phase 3, not the table load."""
        result = run_scenario(build_system("pentium3"), 3, table_size=SIZE)
        phase3 = result.phases[-1]
        assert result.duration == pytest.approx(phase3.duration)
        assert result.duration < phase3.end  # total elapsed is larger

    def test_deterministic_runs(self):
        a = run_scenario(build_system("xeon"), 6, table_size=SIZE, seed=11)
        b = run_scenario(build_system("xeon"), 6, table_size=SIZE, seed=11)
        assert a.transactions_per_second == pytest.approx(b.transactions_per_second)
        assert a.duration == pytest.approx(b.duration)

    def test_table_can_be_supplied(self):
        table = generate_table(SIZE, seed=5)
        result = run_scenario(build_system("pentium3"), 1, table=table)
        assert result.table_size == SIZE

    def test_large_packets_faster_for_same_table(self):
        small = run_scenario(build_system("pentium3"), 1, table_size=SIZE)
        large = run_scenario(build_system("pentium3"), 2, table_size=SIZE)
        assert large.transactions_per_second > small.transactions_per_second

    def test_window_size_does_not_change_functional_result(self):
        a = run_scenario(build_system("pentium3"), 5, table_size=100, window=1)
        b = run_scenario(build_system("pentium3"), 5, table_size=100, window=32)
        assert a.transactions == b.transactions
        assert a.fib_size_after == b.fib_size_after


class TestSeries:
    def test_cpu_series_present(self):
        result = run_scenario(build_system("pentium3"), 1, table_size=SIZE)
        assert "xorp_bgp" in result.cpu_series
        assert result.cpu_series["xorp_bgp"]

    def test_forwarding_series_with_cross_traffic(self):
        result = run_scenario(
            build_system("pentium3"), 1, table_size=SIZE, cross_traffic_mbps=100.0
        )
        assert result.forwarding_series
        assert result.cross_traffic_mbps == 100.0

    def test_cross_traffic_recorded_clamped(self):
        result = run_scenario(
            build_system("cisco"), 2, table_size=SIZE, cross_traffic_mbps=500.0
        )
        assert result.cross_traffic_mbps == 78.0


class TestResultPortability:
    """Results must survive a process boundary (pickle, for the grid
    executor) and a JSON file (the grid cache and golden baselines)."""

    def test_scenario_result_pickles(self):
        import pickle

        result = run_scenario(build_system("pentium3"), 5, table_size=100)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.transactions_per_second == result.transactions_per_second
        assert [p.phase for p in clone.phases] == [p.phase for p in result.phases]
        assert clone.scenario == result.scenario

    def test_to_jsonable_roundtrips_through_json(self):
        import json

        result = run_scenario(build_system("pentium3"), 3, table_size=100)
        summary = result.to_jsonable()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["scenario"] == 3
        assert summary["transactions"] == result.transactions
        assert summary["transactions_per_second"] == result.transactions_per_second
        assert [p["phase"] for p in summary["phases"]] == [1, 3]
        assert all(p["stall"] is None for p in summary["phases"])
        assert "cpu_series" not in summary

    def test_to_jsonable_can_include_series(self):
        import json

        result = run_scenario(
            build_system("pentium3"), 1, table_size=100, cross_traffic_mbps=50.0
        )
        summary = result.to_jsonable(include_series=True)
        assert json.loads(json.dumps(summary)) == summary
        assert summary["cpu_series"]["xorp_bgp"]
        assert summary["forwarding_series"]

    def test_stalled_result_stays_portable(self):
        import json
        import pickle

        from repro.benchmark.harness import StallDiagnostics

        diag = StallDiagnostics(
            reason="test stall", virtual_time=1.0, inflight=2,
            packets_sent=3, packets_total=4, packets_completed=1, events_fired=9,
        )
        trace = PhaseTrace(1, 0.0, 1.0, 1, completed=False, stall=diag)
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.stall.reason == "test stall"
        summary = trace.to_jsonable()
        assert json.loads(json.dumps(summary)) == summary
        assert summary["stall"]["reason"] == "test stall"
