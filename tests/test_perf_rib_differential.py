"""Differential pinning of the trie-backed RIBs.

The trie rewrite of :mod:`repro.bgp.rib` must be observationally
identical to the dict-backed originals (retained verbatim in
:mod:`repro.perf.reference`). Seeded random operation sequences are
replayed against both implementations in lock-step and every observable
is compared: the :class:`RouteChange` returned by each mutation,
lengths, membership, point lookups, full iteration order, aggregate
queries, and Adj-RIB-Out pending deltas. Any divergence — including a
different-but-plausible iteration order — fails here before it can
perturb a golden baseline.
"""

import random

import pytest

from repro.bgp.attributes import AsPath, PathAttributes, intern_attributes
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib, RibRoute
from repro.net.addr import IPv4Address, Prefix
from repro.perf.reference import DictAdjRibIn, DictAdjRibOut, DictLocRib

SEEDS = [1, 7, 42, 1007]
STEPS = 900

NEXT_HOP = IPv4Address.parse("10.0.0.1")


def prefix_pool(rng: random.Random, size: int = 120) -> "list[Prefix]":
    """A pool rich in nested prefixes: a handful of /8s, each with /16,
    /24 and /32 descendants, so aggregate queries and trie internal
    splits are exercised alongside plain exact-match churn."""
    pool: set[Prefix] = set()
    octets = [10, 10, 10, 172, 192]  # deliberately skewed: collisions wanted
    while len(pool) < size:
        top = rng.choice(octets)
        length = rng.choice((8, 16, 16, 24, 24, 24, 32))
        network = top << 24
        if length >= 16:
            network |= rng.randrange(256) << 16
        if length >= 24:
            network |= rng.randrange(256) << 8
        if length == 32:
            network |= rng.randrange(256)
        pool.add(Prefix(network, length))
    return sorted(pool, key=lambda p: (p.network, p.length))


def make_attributes(rng: random.Random) -> PathAttributes:
    """Freshly constructed every call — equal announcements must reach
    the RIBs as distinct objects, exactly as a non-interning decoder
    would hand them over."""
    return PathAttributes(
        as_path=AsPath.from_asns([65001, 65000 + rng.randrange(4)]),
        next_hop=NEXT_HOP,
        med=rng.randrange(3),
    )


class TestAdjRibInDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_ops_identical(self, seed):
        rng = random.Random(seed)
        pool = prefix_pool(rng)
        trie, ref = AdjRibIn("peer"), DictAdjRibIn("peer")
        for step in range(STEPS):
            prefix = rng.choice(pool)
            roll = rng.random()
            if roll < 0.55:
                attrs = make_attributes(rng)
                assert trie.update(prefix, attrs) is ref.update(prefix, attrs)
            elif roll < 0.85:
                assert trie.withdraw(prefix) is ref.withdraw(prefix)
            elif roll < 0.98:
                assert trie.get(prefix) == ref.get(prefix)
                assert (prefix in trie) is (prefix in ref)
            else:
                assert trie.clear() == ref.clear()
            if step % 97 == 0:
                assert len(trie) == len(ref)
                assert list(trie.prefixes()) == list(ref.prefixes())
                assert list(trie.items()) == list(ref.items())
        assert list(trie.items()) == list(ref.items())

    @pytest.mark.parametrize("seed", SEEDS)
    def test_interned_attributes_same_changes(self, seed):
        """Interning collapses equal attributes to one object; the
        RouteChange sequence must not notice."""
        rng = random.Random(seed)
        pool = prefix_pool(rng, size=40)
        plain, interned = AdjRibIn("a"), AdjRibIn("b")
        for _ in range(STEPS):
            prefix = rng.choice(pool)
            if rng.random() < 0.7:
                attrs = make_attributes(rng)
                assert plain.update(prefix, attrs) is interned.update(
                    prefix, intern_attributes(attrs)
                )
            else:
                assert plain.withdraw(prefix) is interned.withdraw(prefix)
        assert list(plain.items()) == list(interned.items())


class TestLocRibDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_ops_identical(self, seed):
        rng = random.Random(seed)
        pool = prefix_pool(rng)
        aggregates = [Prefix(10 << 24, 8), Prefix(172 << 24, 8), Prefix(192 << 24, 8)]
        trie, ref = LocRib(), DictLocRib()
        for step in range(STEPS):
            prefix = rng.choice(pool)
            roll = rng.random()
            if roll < 0.5:
                route = RibRoute(prefix, make_attributes(rng), f"peer{rng.randrange(3)}")
                assert trie.set_best(route) is ref.set_best(route)
            elif roll < 0.8:
                assert trie.remove(prefix) is ref.remove(prefix)
            elif roll < 0.95:
                aggregate = rng.choice(aggregates)
                assert trie.covered(aggregate) == ref.covered(aggregate)
            else:
                assert trie.get(prefix) == ref.get(prefix)
            if step % 97 == 0:
                assert len(trie) == len(ref)
                assert list(trie.routes()) == list(ref.routes())
                assert list(trie.prefixes()) == list(ref.prefixes())
                assert trie.fib_view() == ref.fib_view()
        assert list(trie.routes()) == list(ref.routes())
        assert trie.fib_view() == ref.fib_view()

    def test_covered_includes_exact_match(self):
        aggregate = Prefix.parse("10.0.0.0/8")
        trie, ref = LocRib(), DictLocRib()
        for rib in (trie, ref):
            rib.set_best(
                RibRoute(
                    aggregate,
                    PathAttributes(as_path=AsPath.from_asns([65001]), next_hop=NEXT_HOP),
                    "peer",
                )
            )
        assert trie.covered(aggregate) == ref.covered(aggregate)
        assert len(trie.covered(aggregate)) == 1


class TestAdjRibOutDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_ops_identical(self, seed):
        rng = random.Random(seed)
        pool = prefix_pool(rng, size=60)
        trie, ref = AdjRibOut("peer"), DictAdjRibOut("peer")
        for step in range(STEPS):
            prefix = rng.choice(pool)
            roll = rng.random()
            if roll < 0.5:
                attrs = make_attributes(rng)
                assert trie.stage(prefix, attrs) is ref.stage(prefix, attrs)
            elif roll < 0.8:
                assert trie.stage_withdraw(prefix) is ref.stage_withdraw(prefix)
            elif roll < 0.9:
                assert trie.advertised(prefix) == ref.advertised(prefix)
            else:
                assert trie.has_pending() == ref.has_pending()
                assert trie.pending_counts() == ref.pending_counts()
                assert trie.take_pending() == ref.take_pending()
            if step % 97 == 0:
                assert len(trie) == len(ref)
        assert trie.take_pending() == ref.take_pending()
        assert len(trie) == len(ref)
