"""Interop: two complete BgpSpeakers wired back-to-back.

Every other test drives one speaker with crafted bytes; here both ends
are our own implementation, so the encoder of one must satisfy the
decoder and FSM of the other — OPEN negotiation, keepalives, table
exchange, withdrawals, and propagation through a middle router.
"""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.fsm import Event
from repro.bgp.speaker import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.forwarding.fib import Fib
from repro.net.addr import IPv4Address, Prefix


class Wire:
    """An in-memory duplex link between two speakers' peer sessions."""

    def __init__(self, left: BgpSpeaker, left_peer: str, right: BgpSpeaker, right_peer: str):
        self.queues: list[tuple[BgpSpeaker, str, bytes]] = []
        left.set_send_callback(left_peer, lambda data: self.queues.append((right, right_peer, data)))
        right.set_send_callback(right_peer, lambda data: self.queues.append((left, left_peer, data)))

    def pump(self, limit: int = 10_000) -> int:
        """Deliver queued bytes until quiescent; returns deliveries."""
        delivered = 0
        while self.queues:
            if delivered >= limit:
                raise RuntimeError("wire did not quiesce")
            receiver, peer_id, data = self.queues.pop(0)
            receiver.receive_bytes(peer_id, data)
            delivered += 1
        return delivered


def speaker(asn, ident, addr):
    return BgpSpeaker(
        SpeakerConfig(
            asn=asn,
            bgp_identifier=IPv4Address.parse(ident),
            local_address=IPv4Address.parse(addr),
            hold_time=0.0,
        ),
        fib=Fib(),
    )


def establish(left, left_peer, right, right_peer) -> Wire:
    wire = Wire(left, left_peer, right, right_peer)
    left.start_peer(left_peer)
    right.start_peer(right_peer)
    # The harness confirms the TCP connection on both ends; OPENs and
    # KEEPALIVEs then flow over the wire itself.
    left.transport_connected(left_peer)
    right.transport_connected(right_peer)
    wire.pump()
    assert left.peers[left_peer].established
    assert right.peers[right_peer].established
    return wire


P1 = Prefix.parse("192.0.2.0/24")
P2 = Prefix.parse("198.51.100.0/24")


class TestTwoSpeakers:
    def setup_pair(self):
        a = speaker(65001, "1.1.1.1", "10.0.0.1")
        b = speaker(65002, "2.2.2.2", "10.0.0.2")
        a.add_peer(PeerConfig("to-b", 65002, IPv4Address.parse("10.0.0.2")))
        b.add_peer(PeerConfig("to-a", 65001, IPv4Address.parse("10.0.0.1")))
        wire = establish(a, "to-b", b, "to-a")
        return a, b, wire

    def test_session_comes_up_both_sides(self):
        a, b, _wire = self.setup_pair()
        assert a.session_events() == [("to-b", "up")]
        assert b.session_events() == [("to-a", "up")]

    def test_originated_route_propagates(self):
        a, b, wire = self.setup_pair()
        a.originate(P1)
        for packet in a.flush_updates("to-b"):
            pass  # flush_updates already sent via the callback
        wire.pump()
        assert P1 in b.loc_rib
        route = b.loc_rib.get(P1)
        assert route.attributes.as_path.all_asns() == (65001,)
        assert b.fib.next_hop_for(P1) == a.config.local_address

    def test_withdrawal_propagates(self):
        a, b, wire = self.setup_pair()
        a.originate(P1)
        a.flush_updates("to-b")
        wire.pump()
        a.withdraw_local(P1)
        a.flush_updates("to-b")
        wire.pump()
        assert P1 not in b.loc_rib
        assert len(b.fib) == 0

    def test_bidirectional_exchange(self):
        a, b, wire = self.setup_pair()
        a.originate(P1)
        b.originate(P2)
        a.flush_updates("to-b")
        b.flush_updates("to-a")
        wire.pump()
        assert P2 in a.loc_rib
        assert P1 in b.loc_rib

    def test_as_mismatch_refused(self):
        a = speaker(65001, "1.1.1.1", "10.0.0.1")
        b = speaker(65009, "2.2.2.2", "10.0.0.2")  # not the AS a expects
        a.add_peer(PeerConfig("to-b", 65002, IPv4Address.parse("10.0.0.2")))
        b.add_peer(PeerConfig("to-a", 65001, IPv4Address.parse("10.0.0.1")))
        wire = Wire(a, "to-b", b, "to-a")
        a.start_peer("to-b")
        b.start_peer("to-a")
        a.transport_connected("to-b")
        b.transport_connected("to-a")
        wire.pump()
        assert not a.peers["to-b"].established


class TestThreeSpeakerChain:
    """origin -- transit -- sink: routes must traverse a real middle
    speaker with AS prepending at each eBGP hop."""

    def setup_chain(self):
        origin = speaker(65001, "1.1.1.1", "10.0.1.1")
        transit = speaker(65002, "2.2.2.2", "10.0.2.1")
        sink = speaker(65003, "3.3.3.3", "10.0.3.1")
        origin.add_peer(PeerConfig("to-transit", 65002, IPv4Address.parse("10.0.2.1")))
        transit.add_peer(PeerConfig("to-origin", 65001, IPv4Address.parse("10.0.1.1")))
        transit.add_peer(PeerConfig("to-sink", 65003, IPv4Address.parse("10.0.3.1")))
        sink.add_peer(PeerConfig("to-transit", 65002, IPv4Address.parse("10.0.2.1")))
        wire1 = establish(origin, "to-transit", transit, "to-origin")
        wire2 = establish(transit, "to-sink", sink, "to-transit")
        return origin, transit, sink, wire1, wire2

    def pump_all(self, origin, transit, sink, wire1, wire2):
        for _ in range(6):
            for s in (origin, transit, sink):
                for peer_id in s.peers:
                    s.flush_updates(peer_id)
            wire1.pump()
            wire2.pump()

    def test_route_traverses_transit(self):
        origin, transit, sink, wire1, wire2 = self.setup_chain()
        origin.originate(P1)
        self.pump_all(origin, transit, sink, wire1, wire2)
        assert P1 in transit.loc_rib
        assert P1 in sink.loc_rib
        path = sink.loc_rib.get(P1).attributes.as_path.all_asns()
        assert path == (65002, 65001)
        # Next hop rewritten at each eBGP hop: sink forwards to transit.
        assert sink.fib.next_hop_for(P1) == transit.config.local_address

    def test_withdrawal_traverses_transit(self):
        origin, transit, sink, wire1, wire2 = self.setup_chain()
        origin.originate(P1)
        self.pump_all(origin, transit, sink, wire1, wire2)
        origin.withdraw_local(P1)
        self.pump_all(origin, transit, sink, wire1, wire2)
        assert P1 not in transit.loc_rib
        assert P1 not in sink.loc_rib

    def test_loop_prevention_at_origin(self):
        """The route must not come back to the origin (its own AS is in
        the path)."""
        origin, transit, sink, wire1, wire2 = self.setup_chain()
        origin.originate(P1)
        self.pump_all(origin, transit, sink, wire1, wire2)
        # The origin's Loc-RIB entry is its own local route, not a
        # learned copy via transit.
        assert origin.loc_rib.get(P1).peer_id == "<local>"
