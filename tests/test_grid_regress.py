"""The golden-baseline regression gate: diffs, exit codes, output."""

import json

import pytest

from repro.experiments.runner import main
from repro.grid import bless, compare, load_golden
from repro.grid.baseline import GOLDEN_FORMAT, MetricDrift


def cell_result(cell_id="s1-xeon-seed42-n100", tps=100.0, transactions=100,
                duration=1.0, fib=100, completed=True):
    scenario, platform, seed, size = cell_id.split("-")
    return {
        "cell": {
            "scenario": int(scenario[1:]),
            "platform": platform,
            "seed": int(seed[4:]),
            "table_size": int(size[1:]),
        },
        "completed": completed,
        "transactions": transactions,
        "duration": duration,
        "transactions_per_second": tps,
        "fib_size_after": fib,
    }


GOLDEN = {
    "s1-xeon-seed42-n100": cell_result("s1-xeon-seed42-n100", tps=100.0),
    "s2-xeon-seed42-n100": cell_result("s2-xeon-seed42-n100", tps=500.0),
}


class TestCompare:
    def test_identical_results_pass(self):
        report = compare(GOLDEN, dict(GOLDEN), tolerance=0.05)
        assert report.ok
        assert sorted(report.matching) == sorted(GOLDEN)
        assert not report.drifted and not report.missing

    def test_drift_within_tolerance_passes(self):
        fresh = dict(GOLDEN)
        fresh["s1-xeon-seed42-n100"] = cell_result("s1-xeon-seed42-n100", tps=104.0)
        assert compare(GOLDEN, fresh, tolerance=0.05).ok

    def test_drift_beyond_tolerance_fails(self):
        fresh = dict(GOLDEN)
        fresh["s1-xeon-seed42-n100"] = cell_result("s1-xeon-seed42-n100", tps=110.0)
        report = compare(GOLDEN, fresh, tolerance=0.05)
        assert not report.ok
        (drift,) = report.drifted
        assert drift.cell_id == "s1-xeon-seed42-n100"
        assert drift.metric == "transactions_per_second"
        assert drift.relative_error == pytest.approx(0.10)

    def test_exact_metric_mismatch_fails_regardless_of_tolerance(self):
        fresh = dict(GOLDEN)
        fresh["s1-xeon-seed42-n100"] = cell_result(
            "s1-xeon-seed42-n100", transactions=99
        )
        report = compare(GOLDEN, fresh, tolerance=10.0)
        assert not report.ok
        assert any(d.metric == "transactions" for d in report.drifted)

    def test_stall_flag_flip_fails(self):
        fresh = dict(GOLDEN)
        fresh["s1-xeon-seed42-n100"] = cell_result(
            "s1-xeon-seed42-n100", completed=False
        )
        assert not compare(GOLDEN, fresh).ok

    def test_missing_cell_fails(self):
        fresh = {"s1-xeon-seed42-n100": GOLDEN["s1-xeon-seed42-n100"]}
        report = compare(GOLDEN, fresh)
        assert not report.ok
        assert report.missing == ["s2-xeon-seed42-n100"]

    def test_extra_cell_is_informational(self):
        fresh = dict(GOLDEN)
        fresh["s3-xeon-seed42-n100"] = cell_result("s3-xeon-seed42-n100")
        report = compare(GOLDEN, fresh)
        assert report.ok
        assert report.extra == ["s3-xeon-seed42-n100"]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare(GOLDEN, dict(GOLDEN), tolerance=-0.1)


class TestReportFormatting:
    def test_pass_output_names_tolerance(self):
        text = compare(GOLDEN, dict(GOLDEN), tolerance=0.05).format()
        assert "2/2 golden cells match" in text
        assert "±5%" in text
        assert text.endswith("PASS")

    def test_drift_output_is_human_readable(self):
        fresh = dict(GOLDEN)
        fresh["s1-xeon-seed42-n100"] = cell_result("s1-xeon-seed42-n100", tps=110.0)
        text = compare(GOLDEN, fresh, tolerance=0.05).format()
        assert "DRIFT" in text
        assert "s1-xeon-seed42-n100" in text
        assert "100.0 -> 110.0" in text
        assert "+10.00%" in text
        assert "FAIL" in text

    def test_missing_output_names_the_cell(self):
        fresh = {"s1-xeon-seed42-n100": GOLDEN["s1-xeon-seed42-n100"]}
        text = compare(GOLDEN, fresh).format()
        assert "MISSING s2-xeon-seed42-n100" in text

    def test_exact_drift_description(self):
        drift = MetricDrift("c", "transactions", 100, 99, 0.0)
        assert "exact-match" in drift.describe()


class TestGoldenFiles:
    def test_bless_roundtrips_through_load(self, tmp_path):
        path = bless(
            tmp_path / "golden.json", GOLDEN,
            grid={"scenarios": [1, 2], "platforms": ["xeon"], "seeds": [42],
                  "table_sizes": [100]},
            tolerance=0.07,
        )
        golden = load_golden(path)
        assert golden["format"] == GOLDEN_FORMAT
        assert golden["tolerance"] == 0.07
        assert set(golden["cells"]) == set(GOLDEN)
        # Golden cells pin the headline metrics only, no phase traces.
        assert "phases" not in golden["cells"]["s1-xeon-seed42-n100"]

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99, "cells": {}}))
        with pytest.raises(ValueError):
            load_golden(path)


class TestRegressCli:
    GRID_ARGS = [
        "--workers", "1", "--no-cache",
    ]

    def bless_tiny_golden(self, tmp_path, capsys):
        golden = tmp_path / "golden.json"
        # First bless on a missing golden falls back to the default grid,
        # which is too big for a test — pre-seed the grid spec instead.
        bless(golden, {}, grid={"scenarios": [1], "platforms": ["pentium3"],
                                "seeds": [7], "table_sizes": [100]})
        code = main(["regress", "--golden", str(golden), "--bless", *self.GRID_ARGS])
        capsys.readouterr()
        assert code == 0
        return golden

    def test_fresh_run_against_own_golden_passes(self, tmp_path, capsys):
        golden = self.bless_tiny_golden(tmp_path, capsys)
        code = main(["regress", "--golden", str(golden), *self.GRID_ARGS])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out

    def test_perturbed_golden_fails_with_diff(self, tmp_path, capsys):
        golden = self.bless_tiny_golden(tmp_path, capsys)
        doc = json.loads(golden.read_text())
        cell_id = next(iter(doc["cells"]))
        doc["cells"][cell_id]["transactions_per_second"] *= 1.2
        golden.write_text(json.dumps(doc))
        code = main(["regress", "--golden", str(golden), *self.GRID_ARGS])
        out = capsys.readouterr().out
        assert code == 1
        assert "DRIFT" in out and cell_id in out

    def test_missing_cell_in_fresh_results_fails(self, tmp_path, capsys):
        golden = self.bless_tiny_golden(tmp_path, capsys)
        doc = json.loads(golden.read_text())
        phantom = cell_result("s1-pentium3-seed8-n100")
        doc["cells"]["s1-pentium3-seed8-n100"] = phantom
        golden.write_text(json.dumps(doc))
        code = main(["regress", "--golden", str(golden), *self.GRID_ARGS])
        out = capsys.readouterr().out
        assert code == 1
        assert "MISSING s1-pentium3-seed8-n100" in out

    def test_absent_golden_without_bless_is_an_error(self, tmp_path, capsys):
        code = main(["regress", "--golden", str(tmp_path / "nope.json"),
                     *self.GRID_ARGS])
        err = capsys.readouterr().err
        assert code == 2
        assert "no golden baseline" in err

    def test_tolerance_override(self, tmp_path, capsys):
        golden = self.bless_tiny_golden(tmp_path, capsys)
        doc = json.loads(golden.read_text())
        cell_id = next(iter(doc["cells"]))
        doc["cells"][cell_id]["transactions_per_second"] *= 1.02
        golden.write_text(json.dumps(doc))
        assert main(["regress", "--golden", str(golden), "--tolerance", "0.5",
                     *self.GRID_ARGS]) == 0
        capsys.readouterr()
        assert main(["regress", "--golden", str(golden), "--tolerance", "0.001",
                     *self.GRID_ARGS]) == 1
        capsys.readouterr()


class TestRegressPartialFailure:
    """Exit-code semantics: 0 clean / 1 drift / 2 missing golden / 3
    partial failure (cells never produced a result)."""

    GRID_ARGS = ["--workers", "1", "--no-cache"]

    def bless_tiny_golden(self, tmp_path, capsys):
        golden = tmp_path / "golden.json"
        bless(golden, {}, grid={"scenarios": [1], "platforms": ["pentium3"],
                                "seeds": [7], "table_sizes": [100]})
        assert main(["regress", "--golden", str(golden), "--bless",
                     *self.GRID_ARGS]) == 0
        capsys.readouterr()
        return golden

    def chaos_plan(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"s1-pentium3-seed7-n100": {"kind": "crash"}}))
        return str(plan)

    def test_partial_run_exits_3_not_1(self, tmp_path, capsys):
        golden = self.bless_tiny_golden(tmp_path, capsys)
        code = main(["regress", "--golden", str(golden),
                     "--chaos", self.chaos_plan(tmp_path),
                     "--journal", str(tmp_path / "journal.jsonl"),
                     *self.GRID_ARGS])
        out = capsys.readouterr().out
        assert code == 3
        assert "CRASHED" in out

    def test_bless_refuses_partial_run(self, tmp_path, capsys):
        golden = self.bless_tiny_golden(tmp_path, capsys)
        before = golden.read_text()
        code = main(["regress", "--golden", str(golden), "--bless",
                     "--chaos", self.chaos_plan(tmp_path),
                     "--journal", str(tmp_path / "journal.jsonl"),
                     *self.GRID_ARGS])
        err = capsys.readouterr().err
        assert code == 3
        assert "refusing to bless" in err
        assert golden.read_text() == before

    def test_resilience_flags_do_not_change_a_clean_verdict(self, tmp_path, capsys):
        golden = self.bless_tiny_golden(tmp_path, capsys)
        code = main(["regress", "--golden", str(golden),
                     "--retries", "2", "--cell-timeout", "120",
                     "--journal", str(tmp_path / "journal.jsonl"),
                     *self.GRID_ARGS])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out


class TestGridCli:
    def test_grid_writes_output_and_reports_cache(self, tmp_path, capsys):
        args = ["grid", "--scenarios", "1", "--platforms", "pentium3",
                "--seeds", "7", "--table-sizes", "100",
                "--cache-dir", str(tmp_path / "cache"),
                "--output", str(tmp_path / "out.json")]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 cache hits (0%)" in out
        results = json.loads((tmp_path / "out.json").read_text())
        assert list(results) == ["s1-pentium3-seed7-n100"]

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "1 cache hits (100%)" in out
