"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.benchmark.charts import render_chart, render_sparkline


class TestRenderChart:
    def test_empty(self):
        assert "(no data)" in render_chart({}, title="empty")

    def test_title_and_legend(self):
        text = render_chart({"a": [(0, 1), (1, 2)]}, title="My Chart")
        assert text.splitlines()[0] == "My Chart"
        assert "*=a" in text

    def test_multiple_series_distinct_glyphs(self):
        text = render_chart({"a": [(0, 1)], "b": [(0, 2)], "c": [(0, 3)]})
        assert "*=a" in text and "+=b" in text and "x=c" in text

    def test_points_plotted_at_extremes(self):
        text = render_chart({"a": [(0, 0), (10, 10)]}, width=20, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        # Max y in the top plot row, min y in the bottom plot row.
        assert "*" in rows[0]
        assert "*" in rows[-1]
        # Leftmost and rightmost columns used.
        top = rows[0].split("|", 1)[1]
        bottom = rows[-1].split("|", 1)[1]
        assert bottom[0] == "*"
        assert top.rstrip()[-1] == "*"

    def test_log_scale_skips_nonpositive(self):
        text = render_chart({"a": [(0, 0.0), (1, 10.0), (2, 1000.0)]}, log_y=True)
        assert "*" in text  # positive points survive

    def test_log_scale_tick_values_are_linear_in_decades(self):
        text = render_chart(
            {"a": [(0, 1.0), (1, 10000.0)]}, log_y=True, height=9, y_label="tps"
        )
        assert "1e+04" in text or "10000" in text
        assert "log scale" in text

    def test_axis_labels(self):
        text = render_chart(
            {"a": [(0, 1)]}, x_label="Mb/s", y_label="transactions/s"
        )
        assert "[x: Mb/s]" in text
        assert "[y: transactions/s]" in text

    def test_constant_series_does_not_crash(self):
        text = render_chart({"flat": [(0, 5.0), (1, 5.0), (2, 5.0)]})
        assert "*" in text

    def test_x_range_annotated(self):
        text = render_chart({"a": [(0, 1), (315, 2)]})
        assert "315" in text


class TestSparkline:
    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_flat(self):
        line = render_sparkline([(0, 3.0), (1, 3.0)])
        assert len(line) == 2
        assert len(set(line)) == 1

    def test_rising(self):
        line = render_sparkline([(i, float(i)) for i in range(8)])
        assert line[0] < line[-1]  # block glyphs sort by height

    def test_downsampled_to_width(self):
        line = render_sparkline([(i, float(i % 10)) for i in range(500)], width=40)
        assert len(line) == 40

    def test_dip_visible(self):
        data = [(i, 300.0) for i in range(10)] + [(10, 0.0)] + [
            (i, 300.0) for i in range(11, 20)
        ]
        line = render_sparkline(data)
        assert min(line) == line[10]
