"""Source-fingerprint scope: only code that can change a cell result
participates in the cache key. Editing tests, docs, or markdown must
never invalidate the cache; editing any ``repro`` source file must."""

from pathlib import Path

from repro.grid.cache import (
    FINGERPRINT_EXCLUDED_DIRS,
    FINGERPRINT_SUFFIXES,
    _fingerprint_files,
    source_fingerprint,
)


def make_tree(root: Path) -> None:
    (root / "pkg").mkdir()
    (root / "pkg" / "core.py").write_text("VALUE = 1\n")
    (root / "pkg" / "util.py").write_text("def f():\n    return 2\n")


class TestFingerprintScope:
    def test_tests_docs_and_markdown_are_outside_the_key(self, tmp_path):
        make_tree(tmp_path)
        baseline = source_fingerprint(tmp_path)

        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_core.py").write_text("def test(): pass\n")
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "conf.py").write_text("project = 'x'\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "core.cpython-312.py").write_text("junk\n")
        (tmp_path / "README.md").write_text("# readme\n")
        (tmp_path / "pkg" / "NOTES.md").write_text("notes\n")

        assert source_fingerprint(tmp_path) == baseline

    def test_source_edit_changes_the_key(self, tmp_path):
        make_tree(tmp_path)
        baseline = source_fingerprint(tmp_path)
        (tmp_path / "pkg" / "core.py").write_text("VALUE = 2\n")
        assert source_fingerprint(tmp_path) != baseline

    def test_new_source_file_changes_the_key(self, tmp_path):
        make_tree(tmp_path)
        baseline = source_fingerprint(tmp_path)
        (tmp_path / "pkg" / "extra.py").write_text("EXTRA = 3\n")
        assert source_fingerprint(tmp_path) != baseline

    def test_rename_changes_the_key(self, tmp_path):
        # The digest covers relative paths, not just contents.
        make_tree(tmp_path)
        baseline = source_fingerprint(tmp_path)
        (tmp_path / "pkg" / "core.py").rename(tmp_path / "pkg" / "renamed.py")
        assert source_fingerprint(tmp_path) != baseline

    def test_file_enumeration_is_sorted_and_filtered(self, tmp_path):
        make_tree(tmp_path)
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_core.py").write_text("pass\n")
        files = _fingerprint_files(tmp_path)
        assert files == sorted(files)
        assert all(f.suffix in FINGERPRINT_SUFFIXES for f in files)
        assert all(
            FINGERPRINT_EXCLUDED_DIRS.isdisjoint(f.relative_to(tmp_path).parts)
            for f in files
        )

    def test_live_tree_fingerprint_is_stable(self):
        assert source_fingerprint() == source_fingerprint()
