"""Unit tests for the route-policy engine."""

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.policy import (
    ACCEPT_ALL,
    REJECT_ALL,
    Action,
    Match,
    Policy,
    PolicyResult,
    PrefixMatch,
    Rule,
)
from repro.net.addr import IPv4Address, Prefix

NH = IPv4Address.parse("10.0.0.1")
P24 = Prefix.parse("10.1.2.0/24")


def attrs(path=(65001, 65002), communities=(), local_pref=None, med=None):
    return PathAttributes(
        as_path=AsPath.from_asns(list(path)),
        next_hop=NH,
        communities=communities,
        local_pref=local_pref,
        med=med,
    )


class TestPrefixMatch:
    def test_exact_only_by_default(self):
        pm = PrefixMatch(Prefix.parse("10.0.0.0/8"))
        assert pm.matches(Prefix.parse("10.0.0.0/8"))
        assert not pm.matches(Prefix.parse("10.1.0.0/16"))

    def test_ge_le_window(self):
        pm = PrefixMatch(Prefix.parse("10.0.0.0/8"), ge=16, le=24)
        assert pm.matches(Prefix.parse("10.1.0.0/16"))
        assert pm.matches(P24)
        assert not pm.matches(Prefix.parse("10.0.0.0/8"))
        assert not pm.matches(Prefix.parse("10.1.2.128/25"))

    def test_ge_without_le_extends_to_32(self):
        pm = PrefixMatch(Prefix.parse("10.0.0.0/8"), ge=31)
        assert pm.matches(Prefix.parse("10.0.0.2/31"))
        assert pm.matches(Prefix.parse("10.0.0.1/32"))
        assert not pm.matches(Prefix.parse("10.0.0.0/30"))

    def test_le_without_ge(self):
        pm = PrefixMatch(Prefix.parse("10.0.0.0/8"), le=16)
        assert pm.matches(Prefix.parse("10.0.0.0/8"))
        assert pm.matches(Prefix.parse("10.1.0.0/16"))
        assert not pm.matches(P24)

    def test_outside_covering_prefix(self):
        pm = PrefixMatch(Prefix.parse("10.0.0.0/8"), ge=0, le=32)
        assert not pm.matches(Prefix.parse("11.0.0.0/24"))


class TestMatch:
    def test_empty_match_matches_all(self):
        assert Match().matches(P24, attrs())

    def test_as_in_path(self):
        m = Match(as_in_path=65002)
        assert m.matches(P24, attrs(path=(65001, 65002)))
        assert not m.matches(P24, attrs(path=(65001, 65003)))

    def test_origin_as(self):
        m = Match(origin_as=65002)
        assert m.matches(P24, attrs(path=(65001, 65002)))
        assert not m.matches(P24, attrs(path=(65002, 65001)))

    def test_community(self):
        m = Match(community=0xFFFF0001)
        assert m.matches(P24, attrs(communities=(0xFFFF0001,)))
        assert not m.matches(P24, attrs())

    def test_max_path_length(self):
        m = Match(max_path_length=2)
        assert m.matches(P24, attrs(path=(1, 2)))
        assert not m.matches(P24, attrs(path=(1, 2, 3)))

    def test_conjunction(self):
        m = Match(prefixes=(PrefixMatch(Prefix.parse("10.0.0.0/8"), ge=8, le=32),),
                  as_in_path=65001, max_path_length=3)
        assert m.matches(P24, attrs(path=(65001, 2)))
        assert not m.matches(P24, attrs(path=(65009, 2)))
        assert not m.matches(Prefix.parse("11.0.0.0/24"), attrs(path=(65001, 2)))


class TestAction:
    def test_set_local_pref(self):
        out = Action(set_local_pref=250).apply(attrs())
        assert out.local_pref == 250

    def test_set_med(self):
        out = Action(set_med=30).apply(attrs())
        assert out.med == 30

    def test_prepend(self):
        out = Action(prepend_as=65000, prepend_count=2).apply(attrs(path=(65001,)))
        assert out.as_path.all_asns() == (65000, 65000, 65001)

    def test_add_community(self):
        out = Action(add_community=123).apply(attrs(communities=(9,)))
        assert out.communities == (9, 123)

    def test_add_community_idempotent(self):
        out = Action(add_community=9).apply(attrs(communities=(9,)))
        assert out.communities == (9,)

    def test_strip_communities(self):
        out = Action(strip_communities=True).apply(attrs(communities=(1, 2)))
        assert out.communities == ()

    def test_strip_then_add(self):
        out = Action(strip_communities=True, add_community=7).apply(
            attrs(communities=(1, 2))
        )
        assert out.communities == (7,)

    def test_noop_action_returns_equal_attributes(self):
        original = attrs()
        assert Action().apply(original) == original


class TestPolicy:
    def test_accept_all(self):
        assert ACCEPT_ALL.apply(P24, attrs()) == attrs()

    def test_reject_all(self):
        assert REJECT_ALL.apply(P24, attrs()) is None

    def test_first_match_wins(self):
        policy = Policy([
            Rule(Match(as_in_path=65001), PolicyResult.ACCEPT, Action(set_local_pref=200)),
            Rule(Match(), PolicyResult.ACCEPT, Action(set_local_pref=50)),
        ])
        assert policy.apply(P24, attrs(path=(65001,))).local_pref == 200
        assert policy.apply(P24, attrs(path=(65009,))).local_pref == 50

    def test_reject_rule(self):
        policy = Policy([
            Rule(Match(as_in_path=666), PolicyResult.REJECT),
        ])
        assert policy.apply(P24, attrs(path=(666, 1))) is None
        assert policy.apply(P24, attrs(path=(1, 2))) == attrs(path=(1, 2))

    def test_default_reject(self):
        policy = Policy(
            [Rule(Match(as_in_path=65001), PolicyResult.ACCEPT)],
            default=PolicyResult.REJECT,
        )
        assert policy.apply(P24, attrs(path=(65001,))) is not None
        assert policy.apply(P24, attrs(path=(65002,))) is None

    def test_evaluation_counter(self):
        policy = Policy([
            Rule(Match(as_in_path=1)),
            Rule(Match(as_in_path=2)),
        ])
        policy.apply(P24, attrs(path=(2,)))
        assert policy.evaluations == 2
        policy.apply(P24, attrs(path=(9,)))
        assert policy.evaluations == 5  # 2 rules + default
