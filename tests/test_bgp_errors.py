"""Unit tests for the NOTIFICATION error taxonomy."""

import pytest

from repro.bgp.errors import (
    BgpError,
    CeaseSubcode,
    ErrorCode,
    HeaderSubcode,
    NotificationData,
    OpenSubcode,
    UpdateSubcode,
    header_error,
    open_error,
    update_error,
)


class TestNotificationData:
    def test_describe_known_codes(self):
        data = NotificationData(ErrorCode.UPDATE_MESSAGE_ERROR,
                                UpdateSubcode.MALFORMED_AS_PATH)
        assert data.describe() == "UPDATE_MESSAGE_ERROR/MALFORMED_AS_PATH"

    def test_describe_header(self):
        data = NotificationData(ErrorCode.MESSAGE_HEADER_ERROR,
                                HeaderSubcode.BAD_MESSAGE_TYPE)
        assert "BAD_MESSAGE_TYPE" in data.describe()

    def test_describe_cease(self):
        data = NotificationData(ErrorCode.CEASE, CeaseSubcode.ADMINISTRATIVE_RESET)
        assert "ADMINISTRATIVE_RESET" in data.describe()

    def test_describe_zero_subcode(self):
        data = NotificationData(ErrorCode.HOLD_TIMER_EXPIRED)
        assert data.describe().startswith("HOLD_TIMER_EXPIRED")

    def test_describe_unknown_code(self):
        assert "code 99" in NotificationData(99, 1).describe()

    def test_describe_unknown_subcode(self):
        data = NotificationData(ErrorCode.OPEN_MESSAGE_ERROR, 250)
        assert "subcode 250" in data.describe()

    def test_frozen(self):
        data = NotificationData(1, 2, b"x")
        with pytest.raises(AttributeError):
            data.code = 3


class TestBgpError:
    def test_carries_notification(self):
        error = BgpError(ErrorCode.FSM_ERROR, 0, b"ctx", "bad transition")
        assert error.notification == NotificationData(ErrorCode.FSM_ERROR, 0, b"ctx")
        assert str(error) == "bad transition"

    def test_default_message_is_description(self):
        error = BgpError(ErrorCode.CEASE, CeaseSubcode.OUT_OF_RESOURCES)
        assert "OUT_OF_RESOURCES" in str(error)

    def test_helpers_set_codes(self):
        assert header_error(HeaderSubcode.BAD_MESSAGE_LENGTH).notification.code == \
            ErrorCode.MESSAGE_HEADER_ERROR
        assert open_error(OpenSubcode.BAD_PEER_AS).notification.code == \
            ErrorCode.OPEN_MESSAGE_ERROR
        assert update_error(UpdateSubcode.INVALID_NETWORK_FIELD).notification.code == \
            ErrorCode.UPDATE_MESSAGE_ERROR

    def test_is_exception(self):
        with pytest.raises(BgpError):
            raise update_error(UpdateSubcode.MALFORMED_ATTRIBUTE_LIST)

    def test_data_payload_preserved(self):
        error = update_error(UpdateSubcode.ATTRIBUTE_FLAGS_ERROR, data=b"\x40\x01")
        assert error.notification.data == b"\x40\x01"
