"""Tests for the table dump/load format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import IPv4Address, Prefix
from repro.workload.tabledump import (
    MAGIC,
    TableFormatError,
    dumps,
    load,
    loads,
    save,
)
from repro.workload.tablegen import RouteEntry, SyntheticTable, generate_table
from repro.workload.astopo import generate_policy_table


class TestRoundTrip:
    def test_generated_table(self):
        table = generate_table(300, seed=11)
        restored = loads(dumps(table))
        assert restored.seed == 11
        assert restored.prefixes() == table.prefixes()
        assert [e.origin_as for e in restored] == [e.origin_as for e in table]
        assert [e.transit for e in restored] == [e.transit for e in table]

    def test_policy_table(self):
        table = generate_policy_table(100, seed=3)
        restored = loads(dumps(table))
        assert [e.transit for e in restored] == [e.transit for e in table]

    def test_empty_table(self):
        table = SyntheticTable([], seed=0)
        assert len(loads(dumps(table))) == 0

    def test_file_round_trip(self, tmp_path):
        table = generate_table(50, seed=4)
        path = tmp_path / "table.bgt"
        size = save(table, path)
        assert path.stat().st_size == size
        assert load(path).prefixes() == table.prefixes()

    def test_bytes_deterministic(self):
        assert dumps(generate_table(80, seed=2)) == dumps(generate_table(80, seed=2))

    @settings(max_examples=25)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                st.integers(min_value=0, max_value=32),
                st.integers(min_value=1, max_value=0xFFFF),
                st.lists(st.integers(min_value=1, max_value=0xFFFF), max_size=6),
            ),
            max_size=20,
        )
    )
    def test_arbitrary_entries_round_trip(self, raw):
        entries = [
            RouteEntry(
                Prefix.from_address(IPv4Address(network), length),
                origin,
                tuple(transit),
            )
            for network, length, origin, transit in raw
        ]
        table = SyntheticTable(entries, seed=1)
        restored = loads(dumps(table))
        assert [(e.prefix, e.origin_as, e.transit) for e in restored] == [
            (e.prefix, e.origin_as, e.transit) for e in entries
        ]


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(TableFormatError):
            loads(b"NOPE" + b"\x00" * 8)

    def test_truncated_header(self):
        with pytest.raises(TableFormatError):
            loads(MAGIC + b"\x00\x00")

    def test_truncated_entries(self):
        data = dumps(generate_table(10, seed=1))
        with pytest.raises(TableFormatError):
            loads(data[:-3])

    def test_trailing_bytes(self):
        data = dumps(generate_table(5, seed=1))
        with pytest.raises(TableFormatError):
            loads(data + b"\x00")

    def test_bad_prefix_length(self):
        data = bytearray(dumps(SyntheticTable(
            [RouteEntry(Prefix.parse("10.0.0.0/8"), 100, ())], seed=0
        )))
        data[12] = 60  # corrupt the prefix-length byte
        with pytest.raises(TableFormatError):
            loads(bytes(data))
