"""Tests pinning the checked-in cost table to the paper's Table III."""

import pytest

from repro.systems.calibration import budgets_of, derive_budgets, relative_error
from repro.systems.costs import XORP_BASE_COSTS


class TestDerivation:
    def test_budgets_positive(self):
        derived = derive_budgets()
        for name in derived.__dataclass_fields__:
            assert getattr(derived, name) > 0, name

    def test_packet_overhead_near_0_6_ms(self):
        # 1/1111.1 - 1/3636.4 = 0.625 ms.
        assert derive_budgets().packet_overhead == pytest.approx(0.625e-3, rel=0.02)

    def test_decision_path_near_0_275_ms(self):
        assert derive_budgets().decision_two_candidates == pytest.approx(
            0.275e-3, rel=0.02
        )

    def test_add_chain_near_3_ms(self):
        assert derive_budgets().add_chain == pytest.approx(3.03e-3, rel=0.03)


class TestModelConsistency:
    """The checked-in table must stay within tolerance of the derived
    budgets — a guard against casual retuning."""

    def test_core_budgets_within_tolerance(self):
        errors = relative_error(derive_budgets(), budgets_of(XORP_BASE_COSTS))
        for name in (
            "packet_overhead",
            "decision_two_candidates",
            "add_chain",
            "ipc_per_message",
        ):
            assert errors[name] < 0.05, (name, errors[name])

    def test_withdraw_chain_within_tolerance(self):
        errors = relative_error(derive_budgets(), budgets_of(XORP_BASE_COSTS))
        assert errors["withdraw_chain"] < 0.10

    def test_replace_chain_documented_deviation(self):
        """The replacement chain deviates by design (the s7/s8 tension
        documented in EXPERIMENTS.md); it must still be within 10%
        of the scenario-8 anchor."""
        errors = relative_error(derive_budgets(), budgets_of(XORP_BASE_COSTS))
        assert errors["replace_chain"] < 0.10

    def test_end_to_end_scenario1_sum(self):
        """Summing every stage a scenario-1 prefix traverses reproduces
        the paper's 5.40 ms on the reference platform."""
        c = XORP_BASE_COSTS
        total = (
            c.pkt_rx + c.msg_parse                # packet overhead
            + c.decide_unit + c.policy_eval       # decision, 1 candidate
            + c.ipc_rib_msg + c.ipc_fea_msg       # per-message IPC
            + c.rib_add + c.fea_add + c.kfib_add  # change chain
        )
        assert total == pytest.approx(1.0 / 185.2, rel=0.03)
