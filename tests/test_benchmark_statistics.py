"""Tests for benchmark statistics and the repeatability claim."""

import pytest

from repro.benchmark.statistics import (
    RepeatabilityResult,
    SampleStats,
    repeatability_study,
    speedup,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        stats = summarize([2.0, 4.0, 6.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(4.0)
        assert stats.stdev == pytest.approx(2.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 6.0

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats.stdev == 0.0
        assert stats.coefficient_of_variation == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_coefficient_of_variation(self):
        stats = summarize([90.0, 100.0, 110.0])
        assert stats.coefficient_of_variation == pytest.approx(0.1, abs=0.01)

    def test_spread(self):
        stats = summarize([90.0, 100.0, 110.0])
        assert stats.spread == pytest.approx(0.2)

    def test_zero_mean(self):
        stats = summarize([0.0, 0.0])
        assert stats.coefficient_of_variation == float("inf")


class TestSpeedup:
    def test_basic(self):
        assert speedup(100.0, 250.0) == 2.5

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)


class TestRepeatability:
    def test_needs_seeds(self):
        with pytest.raises(ValueError):
            repeatability_study("pentium3", 1, seeds=())

    def test_same_seed_identical(self):
        result = repeatability_study("pentium3", 1, seeds=(9, 9), table_size=200)
        assert result.samples[0] == result.samples[1]
        assert result.stats.stdev == 0.0

    def test_benchmark_is_repeatable_across_seeds(self):
        """The paper's §I claim: different workload instances of the
        same shape produce near-identical metrics."""
        result = repeatability_study(
            "pentium3", 1, seeds=(1, 2, 3, 4), table_size=400
        )
        assert result.is_repeatable(tolerance=0.02), result.stats

    def test_repeatable_on_large_packet_scenario(self):
        result = repeatability_study("cisco", 2, seeds=(1, 2, 3), table_size=1000)
        assert result.is_repeatable(tolerance=0.02), result.stats

    def test_result_metadata(self):
        result = repeatability_study("xeon", 6, seeds=(5,), table_size=300)
        assert result.platform == "xeon"
        assert result.scenario == 6
        assert result.table_size == 300
        assert len(result.samples) == 1
