"""Unit tests for the synthetic routing-table generator."""

import pytest

from repro.workload.tablegen import PREFIX_LENGTH_MIX, RouteEntry, generate_table
from repro.net.addr import Prefix


class TestGeneration:
    def test_requested_size(self):
        assert len(generate_table(100)) == 100

    def test_empty_table(self):
        assert len(generate_table(0)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_table(-1)

    def test_deterministic_for_seed(self):
        a = generate_table(200, seed=7)
        b = generate_table(200, seed=7)
        assert a.prefixes() == b.prefixes()
        assert [e.origin_as for e in a] == [e.origin_as for e in b]

    def test_different_seeds_differ(self):
        a = generate_table(200, seed=1)
        b = generate_table(200, seed=2)
        assert a.prefixes() != b.prefixes()

    def test_all_prefixes_unique(self):
        table = generate_table(2000)
        prefixes = table.prefixes()
        assert len(set(prefixes)) == len(prefixes)

    def test_prefixes_canonical(self):
        for entry in generate_table(500):
            # Construction via Prefix would raise otherwise, but verify
            # the invariant explicitly.
            assert Prefix(entry.prefix.network, entry.prefix.length) == entry.prefix

    def test_avoids_reserved_space(self):
        for entry in generate_table(1000):
            first_octet = entry.prefix.network >> 24
            assert first_octet not in (0, 10, 127)
            assert first_octet < 224

    def test_length_distribution_dominated_by_24(self):
        histogram = generate_table(5000).length_histogram()
        assert max(histogram, key=histogram.get) == 24
        # /24s are roughly half the table.
        assert 0.4 < histogram[24] / 5000 < 0.62

    def test_length_mix_sums_to_one(self):
        assert sum(share for _l, share in PREFIX_LENGTH_MIX) == pytest.approx(1.0, abs=0.01)

    def test_indexing_and_iteration(self):
        table = generate_table(10)
        assert table[0] in list(table)
        assert isinstance(table[0], RouteEntry)


class TestPathVia:
    def entry(self):
        return RouteEntry(Prefix.parse("192.0.2.0/24"), origin_as=4000, transit=(2000, 3000))

    def test_baseline_four_hops(self):
        path = self.entry().path_via(65101)
        assert path == (65101, 2000, 3000, 4000)

    def test_longer_path(self):
        path = self.entry().path_via(65102, extra_hops=2)
        assert len(path) == 6
        assert path[0] == 65102
        assert path[-1] == 4000

    def test_shorter_path(self):
        path = self.entry().path_via(65102, extra_hops=-2)
        assert path == (65102, 4000)

    def test_one_fewer_hop(self):
        path = self.entry().path_via(65102, extra_hops=-1)
        assert path == (65102, 2000, 4000)

    def test_longer_strictly_longer_than_baseline(self):
        entry = self.entry()
        assert len(entry.path_via(65102, 2)) > len(entry.path_via(65101, 0))

    def test_shorter_strictly_shorter_than_baseline(self):
        entry = self.entry()
        assert len(entry.path_via(65102, -2)) < len(entry.path_via(65101, 0))

    def test_synthetic_hops_valid_asns(self):
        path = self.entry().path_via(65102, extra_hops=5)
        for asn in path:
            assert 0 < asn <= 0xFFFF
