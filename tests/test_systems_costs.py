"""Unit tests for the cost models and work-to-charge mapping."""

import pytest

from repro.bgp.speaker import WorkLog
from repro.systems.costs import (
    XORP_BASE_COSTS,
    CostModel,
    StageCharges,
    charges_for,
    export_charges,
    work_delta,
)


class TestCostModel:
    def test_scaled(self):
        doubled = XORP_BASE_COSTS.scaled(2.0)
        assert doubled.pkt_rx == pytest.approx(2 * XORP_BASE_COSTS.pkt_rx)
        assert doubled.kfib_replace == pytest.approx(2 * XORP_BASE_COSTS.kfib_replace)

    def test_all_costs_positive(self):
        for name in CostModel.__dataclass_fields__:
            assert getattr(XORP_BASE_COSTS, name) > 0, name


class TestChargesFor:
    def test_no_change_announcement(self):
        delta = WorkLog(
            packets_received=1,
            messages_decoded=1,
            prefixes_announced=1,
            decisions=2,
            policy_evaluations=1,
        )
        charges = charges_for(XORP_BASE_COSTS, delta)
        assert charges.irq == pytest.approx(XORP_BASE_COSTS.pkt_rx)
        assert charges.bgp == pytest.approx(
            XORP_BASE_COSTS.msg_parse + 2 * XORP_BASE_COSTS.decide_unit
        )
        assert charges.policy == pytest.approx(XORP_BASE_COSTS.policy_eval)
        assert charges.rib == 0.0
        assert charges.fea == 0.0
        assert charges.kernel_fib == 0.0

    def test_fib_add_chain(self):
        delta = WorkLog(
            packets_received=1,
            messages_decoded=1,
            updates_processed=1,
            prefixes_announced=1,
            decisions=1,
            policy_evaluations=1,
            loc_rib_adds=1,
            fib_adds=1,
        )
        charges = charges_for(XORP_BASE_COSTS, delta)
        assert charges.rib == pytest.approx(
            XORP_BASE_COSTS.ipc_rib_msg + XORP_BASE_COSTS.rib_add
        )
        assert charges.fea == pytest.approx(
            XORP_BASE_COSTS.ipc_fea_msg + XORP_BASE_COSTS.fea_add
        )
        assert charges.kernel_fib == pytest.approx(XORP_BASE_COSTS.kfib_add)

    def test_ipc_charged_per_message_not_per_prefix(self):
        small = WorkLog(updates_processed=1, prefixes_announced=1,
                        loc_rib_adds=1, fib_adds=1)
        large = WorkLog(updates_processed=1, prefixes_announced=500,
                        loc_rib_adds=500, fib_adds=500)
        c_small = charges_for(XORP_BASE_COSTS, small)
        c_large = charges_for(XORP_BASE_COSTS, large)
        ipc = XORP_BASE_COSTS.ipc_rib_msg
        assert c_small.rib == pytest.approx(ipc + XORP_BASE_COSTS.rib_add)
        assert c_large.rib == pytest.approx(ipc + 500 * XORP_BASE_COSTS.rib_add)

    def test_no_ipc_without_changes(self):
        delta = WorkLog(updates_processed=1, prefixes_announced=500, decisions=1000)
        charges = charges_for(XORP_BASE_COSTS, delta)
        assert charges.rib == 0.0
        assert charges.fea == 0.0

    def test_withdraw_chain(self):
        delta = WorkLog(
            updates_processed=1,
            prefixes_withdrawn=1,
            decisions=1,
            loc_rib_removes=1,
            fib_deletes=1,
        )
        charges = charges_for(XORP_BASE_COSTS, delta)
        assert charges.kernel_fib == pytest.approx(XORP_BASE_COSTS.kfib_remove)
        assert charges.fea > 0

    def test_total(self):
        charges = StageCharges(irq=1, bgp=2, policy=3, rib=4, fea=5, kernel_fib=6)
        assert charges.total() == 21


class TestExportCharges:
    def test_zero_exports(self):
        assert export_charges(XORP_BASE_COSTS, 0, 0) == (0.0, 0.0)

    def test_per_prefix_and_per_update(self):
        bgp, kernel = export_charges(XORP_BASE_COSTS, 500, 1)
        assert bgp == pytest.approx(
            500 * XORP_BASE_COSTS.export_prefix + XORP_BASE_COSTS.msg_encode
        )
        assert kernel == pytest.approx(XORP_BASE_COSTS.pkt_tx)


class TestWorkDelta:
    def test_subtraction(self):
        before = WorkLog(prefixes_announced=5, fib_adds=3)
        after = WorkLog(prefixes_announced=8, fib_adds=3, fib_deletes=2)
        delta = work_delta(after, before)
        assert delta.prefixes_announced == 3
        assert delta.fib_adds == 0
        assert delta.fib_deletes == 2
