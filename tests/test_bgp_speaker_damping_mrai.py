"""Integration tests: flap damping and MRAI wired into the speaker."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.damping import DampingConfig
from repro.bgp.messages import KeepaliveMessage, OpenMessage, UpdateMessage, decode_message
from repro.bgp.speaker import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.forwarding.fib import Fib
from repro.net.addr import IPv4Address, Prefix

S1, S2 = "s1", "s2"
S1_AS, S2_AS = 65001, 65002
S1_ADDR = IPv4Address.parse("10.0.1.1")
S2_ADDR = IPv4Address.parse("10.0.2.1")
P1 = Prefix.parse("192.0.2.0/24")

DAMPING = DampingConfig(half_life=100.0, max_suppress_time=600.0)


def make_router(fib=None):
    return BgpSpeaker(
        SpeakerConfig(
            asn=65000,
            bgp_identifier=IPv4Address.parse("9.9.9.9"),
            local_address=IPv4Address.parse("10.0.0.254"),
            hold_time=0.0,
        ),
        fib=fib,
    )


def connect(router, peer_id, asn, addr, bgp_id, **peer_kwargs):
    router.add_peer(PeerConfig(peer_id, asn, addr, **peer_kwargs))
    outbox = []
    router.set_send_callback(peer_id, outbox.append)
    router.start_peer(peer_id)
    router.transport_connected(peer_id)
    router.receive_bytes(peer_id, OpenMessage(asn, 0, bgp_id).encode())
    router.receive_bytes(peer_id, KeepaliveMessage().encode())
    return outbox


def announce(router, peer_id, prefixes, path, next_hop, now=0.0):
    attrs = PathAttributes(as_path=AsPath.from_asns(path), next_hop=next_hop)
    router.receive_bytes(
        peer_id, UpdateMessage(attributes=attrs, nlri=tuple(prefixes)).encode(), now=now
    )


def withdraw(router, peer_id, prefixes, now=0.0):
    router.receive_bytes(
        peer_id, UpdateMessage(withdrawn=tuple(prefixes)).encode(), now=now
    )


class TestDampingInSpeaker:
    def flap(self, router, times):
        for i in range(times):
            announce(router, S1, [P1], [S1_AS, 300], S1_ADDR, now=float(2 * i))
            withdraw(router, S1, [P1], now=float(2 * i + 1))

    def test_flapping_route_becomes_suppressed(self):
        fib = Fib()
        router = make_router(fib=fib)
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"), damping=DAMPING)
        self.flap(router, times=3)
        # Route is withdrawn *and* suppressed: a fresh announcement must
        # not install it.
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR, now=7.0)
        assert len(router.loc_rib) == 0
        assert len(fib) == 0
        assert router.peers[S1].damper.suppressions >= 1

    def test_suppressed_route_reused_after_decay(self):
        fib = Fib()
        router = make_router(fib=fib)
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"), damping=DAMPING)
        self.flap(router, times=3)
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR, now=7.0)
        assert len(router.loc_rib) == 0
        # Long after the storm the penalty decays below reuse and the
        # route installs again.
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR, now=2000.0)
        assert len(router.loc_rib) == 1
        assert fib.next_hop_for(P1) == S1_ADDR

    def test_stable_route_never_suppressed(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"), damping=DAMPING)
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR, now=0.0)
        assert len(router.loc_rib) == 1

    def test_damping_per_peer(self):
        """A flap storm from one peer must not damp the other's route."""
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"), damping=DAMPING)
        connect(router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"), damping=DAMPING)
        self.flap(router, times=3)
        announce(router, S2, [P1], [S2_AS, 300], S2_ADDR, now=8.0)
        assert len(router.loc_rib) == 1
        assert router.loc_rib.get(P1).peer_id == S2

    def test_no_damping_by_default(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        assert router.peers[S1].damper is None
        self.flap(router, times=10)
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR, now=25.0)
        assert len(router.loc_rib) == 1


class TestMraiInSpeaker:
    def test_first_export_passes_rapid_changes_withheld(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        out2 = connect(
            router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"), mrai_interval=30.0
        )
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR, now=0.0)
        packets = router.flush_updates(S2)
        assert len(packets) == 1  # first advertisement passes

        # A rapid change (better path from S1) is withheld.
        announce(router, S1, [P1], [S1_AS], S1_ADDR, now=5.0)
        assert router.flush_updates(S2) == []
        assert len(router.peers[S2].mrai) == 1

    def test_release_mrai_emits_newest_state(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(
            router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"), mrai_interval=30.0
        )
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR, now=0.0)
        router.flush_updates(S2)
        announce(router, S1, [P1], [S1_AS], S1_ADDR, now=5.0)       # withheld
        announce(router, S1, [P1], [S1_AS, 301], S1_ADDR, now=6.0)  # coalesces

        assert router.release_mrai(S2, now=31.0) == 1
        packets = router.flush_updates(S2)
        assert len(packets) == 1
        update = decode_message(packets[0])
        # The newest state (path via 301, re-exported with our AS).
        assert update.attributes.as_path.all_asns() == (65000, S1_AS, 301)

    def test_withheld_withdraw_released(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(
            router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"), mrai_interval=30.0
        )
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR, now=0.0)
        router.flush_updates(S2)
        withdraw(router, S1, [P1], now=5.0)
        assert router.flush_updates(S2) == []
        router.release_mrai(S2, now=31.0)
        packets = router.flush_updates(S2)
        assert decode_message(packets[0]).withdrawn == (P1,)

    def test_release_on_peer_without_mrai_is_noop(self):
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        assert router.release_mrai(S1, now=100.0) == 0

    def test_mrai_batches_flap_storm(self):
        """A storm of N changes inside one interval emits one update —
        the paper's 'aggregate update messages' implication realised by
        the protocol's own mechanism."""
        router = make_router()
        connect(router, S1, S1_AS, S1_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(
            router, S2, S2_AS, S2_ADDR, IPv4Address.parse("2.2.2.2"), mrai_interval=30.0
        )
        announce(router, S1, [P1], [S1_AS, 300], S1_ADDR, now=0.0)
        first = router.flush_updates(S2)
        assert len(first) == 1
        for i in range(10):
            announce(router, S1, [P1], [S1_AS, 300 + i + 1], S1_ADDR, now=1.0 + i)
        assert router.flush_updates(S2) == []
        router.release_mrai(S2, now=31.0)
        assert len(router.flush_updates(S2)) == 1
        assert router.peers[S2].mrai.coalesced >= 9
