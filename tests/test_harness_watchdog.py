"""Stall-proofing of the benchmark harness: window accounting under
exceptions, the deadlock check, and the virtual-time watchdog."""

import pytest

from repro.benchmark.harness import (
    SPEAKER1,
    SPEAKER1_ADDR,
    SPEAKER1_ASN,
    StallError,
    Watchdog,
    run_scenario,
    stream_interleaved,
    stream_packets,
)
from repro.bgp.policy import ACCEPT_ALL
from repro.bgp.speaker import PeerConfig
from repro.faults.link import FaultyLink, LinkPolicy
from repro.systems.platforms import build_system
from repro.workload.tablegen import generate_table
from repro.workload.updates import UpdateStreamBuilder


def make_router():
    router = build_system("pentium3")
    router.add_peer(
        PeerConfig(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR, ACCEPT_ALL, ACCEPT_ALL)
    )
    router.handshake(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR)
    return router


def make_packets(count=20):
    builder = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)
    return builder.announcements(generate_table(count, 1), 1)


class TestExceptionSafety:
    def test_failed_delivery_rolls_back_and_restores_hook(self):
        router = make_router()
        packets = make_packets()
        calls = {"n": 0}

        def flaky(data):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("boom")
            router.deliver(SPEAKER1, data)

        with pytest.raises(RuntimeError, match="boom"):
            stream_packets(router, SPEAKER1, packets, window=4, deliver=flaky)
        assert router.on_packet_done is None

        # The window accounting stayed truthful: the same router can
        # stream the full set afterwards without phantom in-flight slots.
        router.run_until_idle()
        stream_packets(router, SPEAKER1, packets, window=4)
        assert len(router.speaker.loc_rib) == 20

    def test_interleaved_restores_hook_on_error(self):
        router = make_router()
        original = router.deliver
        calls = {"n": 0}

        def flaky(peer_id, data):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("boom")
            original(peer_id, data)

        router.deliver = flaky
        with pytest.raises(RuntimeError, match="boom"):
            stream_interleaved(router, [(SPEAKER1, make_packets())], window=4)
        assert router.on_packet_done is None


class TestDeadlockDetection:
    def test_lost_packets_deadlock_the_window(self):
        router = make_router()
        packets = make_packets()
        with pytest.raises(StallError) as info:
            stream_packets(
                router, SPEAKER1, packets, window=4, deliver=lambda data: None
            )
        diag = info.value.diagnostics
        assert "deadlock" in diag.reason
        # The window filled and nothing ever came back.
        assert diag.inflight == 4
        assert diag.packets_sent == 4
        assert diag.packets_total == 20
        assert router.on_packet_done is None

    def test_clean_stream_does_not_trip_the_check(self):
        router = make_router()
        stream_packets(router, SPEAKER1, make_packets(), window=4)
        assert len(router.speaker.loc_rib) == 20


class TestWatchdog:
    def test_validation(self):
        router = make_router()
        with pytest.raises(ValueError):
            Watchdog(router, interval=0.0)
        with pytest.raises(ValueError):
            Watchdog(router, patience=0)

    def test_livelock_raises_with_diagnostics(self):
        # A permanently dark link with flat, tiny RTOs and an absurd
        # retry budget: retransmission events fire forever while no
        # packet ever completes — the livelock the watchdog exists for.
        router = make_router()
        link = FaultyLink(
            router.world.sim,
            lambda data: router.deliver(SPEAKER1, data),
            LinkPolicy(
                retransmit_timeout=0.05,
                retransmit_backoff=1.0,
                max_retransmits=10**6,
            ),
        )
        link.partition()
        watchdog = Watchdog(router, interval=5.0, patience=2)
        with pytest.raises(StallError) as info:
            stream_packets(
                router, SPEAKER1, make_packets(), window=4,
                deliver=link.send, watchdog=watchdog,
            )
        diag = info.value.diagnostics
        assert "live event traffic" in diag.reason
        assert diag.events_fired > 0
        # Detection time is bounded by patience * interval plus one
        # check period — not proportional to the retry budget.
        assert router.now <= 20.0

    def test_watchdog_adds_zero_virtual_time(self):
        packets = make_packets()
        plain = make_router()
        stream_packets(plain, SPEAKER1, packets, window=4)
        watched = make_router()
        stream_packets(
            watched, SPEAKER1, packets, window=4,
            watchdog=Watchdog(watched, interval=0.001),
        )
        assert watched.now == plain.now
        assert watched.last_completion == plain.last_completion


class TestScenarioIntegration:
    def test_stalled_phase_fails_the_scenario_and_skips_the_rest(self):
        router = build_system("pentium3")
        result = run_scenario(
            router, 5, table_size=50,
            deliver={SPEAKER1: lambda data: None},
        )
        assert not result.completed
        assert result.stalled_phase is not None
        assert result.stalled_phase.phase == 1
        # Phases 2 and 3 were skipped rather than run against a router
        # that never got its table.
        assert len(result.phases) == 1
        assert "deadlock" in result.stalled_phase.stall.reason

    def test_clean_scenario_unaffected_by_default_watchdog(self):
        router = build_system("pentium3")
        result = run_scenario(router, 1, table_size=50)
        assert result.completed
        assert result.stalled_phase is None
        assert result.transactions_per_second > 0
