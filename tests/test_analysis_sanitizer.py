"""The simulation sanitizer: checked mode holds on clean runs, every
invariant trips on a seeded violation, and checking never changes the
result (observe-only contract)."""

import json

import pytest

from repro.analysis import Sanitizer, SanitizerError
from repro.benchmark import run_scenario
from repro.grid.cells import GridCell, run_cell
from repro.sim.engine import Simulator, _ScheduledEvent
from repro.systems import build_system


def _noop() -> None:
    pass


def event(time: float, seq: int) -> _ScheduledEvent:
    return _ScheduledEvent(time, seq, _noop)


class TestCleanRuns:
    def test_sanitized_scenario_holds_all_invariants(self):
        router = build_system("pentium3")
        sanitizer = Sanitizer().attach(router)
        result = run_scenario(router, 5, table_size=120, seed=7)
        sanitizer.check_quiescent()
        assert result.completed
        assert sanitizer.stats.events_checked > 0
        assert sanitizer.stats.heap_checks > 0
        assert sanitizer.stats.conservation_checks > sanitizer.stats.events_checked
        assert sanitizer.stats.quiescent_checks == 1

    def test_checked_mode_is_observe_only(self):
        cell = GridCell(1, "pentium3", 11, 100)
        plain = json.dumps(run_cell(cell), sort_keys=True)
        checked = json.dumps(run_cell(cell, sanitize=True), sort_keys=True)
        assert plain == checked

    def test_detach_restores_unobserved_simulator(self):
        sim = Simulator()
        sanitizer = Sanitizer().attach_simulator(sim)
        sanitizer.detach()
        assert sim.observer is None

    def test_simulator_refuses_second_observer(self):
        sim = Simulator()
        Sanitizer().attach_simulator(sim)
        with pytest.raises(ValueError):
            Sanitizer().attach_simulator(sim)


class TestEventInvariants:
    def test_monotonic_clock_violation(self):
        sanitizer = Sanitizer().attach_simulator(Simulator())
        sanitizer.before_fire(event(5.0, 0))
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.before_fire(event(3.0, 1))
        assert excinfo.value.invariant == "monotonic-clock"

    def test_stable_tie_break_violation(self):
        sanitizer = Sanitizer().attach_simulator(Simulator())
        sanitizer.before_fire(event(1.0, 5))
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.before_fire(event(1.0, 4))
        assert excinfo.value.invariant == "stable-tie-break"

    def test_now_rewind_detected_after_fire(self):
        sim = Simulator()
        sanitizer = Sanitizer().attach_simulator(sim)
        sim.now = 10.0
        sanitizer.after_fire(event(10.0, 0))
        sim.now = 2.0
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.after_fire(event(10.0, 1))
        assert excinfo.value.invariant == "monotonic-clock"

    def test_heap_corruption_detected(self):
        sim = Simulator()
        sanitizer = Sanitizer().attach_simulator(sim)
        for delay in (1.0, 2.0, 3.0, 4.0):
            sim.schedule(delay, _noop)
        # Mutate a heaped entry in place: a leaf now sorts before its
        # parent, exactly the corruption the scan exists to catch.
        sim._queue[-1].time = 0.0
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.before_fire(event(0.0, 99))
        assert excinfo.value.invariant == "heap-integrity"

    def test_error_carries_event_trace(self):
        sanitizer = Sanitizer().attach_simulator(Simulator())
        sanitizer.before_fire(event(1.0, 0))
        sanitizer.before_fire(event(2.0, 1))
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.before_fire(event(0.5, 2))
        error = excinfo.value
        assert [record["seq"] for record in error.trace] == [0, 1, 2]
        described = error.describe()
        assert "monotonic-clock" in described
        assert "recent events" in described


class TestQuiescentInvariants:
    @pytest.fixture()
    def quiesced_router(self):
        router = build_system("pentium3")
        sanitizer = Sanitizer().attach(router)
        run_scenario(router, 1, table_size=80, seed=3)
        return router, sanitizer

    def test_conservation_violation(self, quiesced_router):
        router, sanitizer = quiesced_router
        router.speaker.audit.accepted += 1
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.check_quiescent()
        assert excinfo.value.invariant == "prefix-conservation"

    def test_rib_fib_disagreement(self, quiesced_router):
        router, sanitizer = quiesced_router
        prefix, _next_hop = next(iter(router.fib.routes()))
        router.fib.delete_route(prefix)
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.check_quiescent()
        assert excinfo.value.invariant == "rib-fib-agreement"
        assert "Loc-RIB only" in excinfo.value.message

    def test_clean_router_passes(self, quiesced_router):
        _router, sanitizer = quiesced_router
        sanitizer.check_quiescent()
        assert sanitizer.stats.quiescent_checks == 1


class TestAuditLedger:
    def test_audit_balances_through_a_full_scenario(self):
        router = build_system("cisco")
        run_scenario(router, 5, table_size=100, seed=9)
        audit = router.speaker.audit
        assert audit.balanced()
        assert audit.announced > 0
        assert audit.classified_announcements == audit.announced

    def test_imbalance_description_names_counters(self):
        router = build_system("pentium3")
        run_scenario(router, 1, table_size=50, seed=1)
        audit = router.speaker.audit
        audit.announced += 3
        assert not audit.balanced()
        assert "announced" in audit.describe_imbalance()


class TestCheckCli:
    def test_check_command_exits_zero_on_clean_run(self, capsys):
        from repro.experiments.runner import main as bgpbench

        code = bgpbench(
            ["check", "--platform", "pentium3", "--scenario", "5", "--table-size", "100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sanitizer:" in out
        assert "all invariants held" in out
