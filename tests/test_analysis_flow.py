"""The whole-program flow analysis: call graph, taint, census,
baseline, SARIF, CLI.

Every RPR10x rule has a bad/good fixture pair under
``tests/fixtures/flow``; the bad file must produce at least one finding
of exactly that rule and the good twin must be clean. Fixtures are
checked through the flow pass only — they deliberately contain the raw
patterns (wall-clock reads, module caches) the per-module linter would
also flag, which is the point: the flow rules catch the *cross-function*
shape. The source tree plus the committed baseline must come out clean —
the invariant the CI ``lint --flow`` step enforces.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.flow import (
    DEFAULT_BASELINE,
    FLOW_RULES,
    analyze_paths,
    finding_key,
    flow_rule_ids,
    load_baseline,
    render_flow_json,
    render_flow_text,
    save_baseline,
)
from repro.analysis.flow.baseline import apply_baseline, normalize_path
from repro.analysis.flow.callgraph import (
    ProjectGraph,
    module_name_for,
    resolve_relative,
)
from repro.analysis.flow.sarif import to_sarif
from repro.analysis.flow.taint import tainted_functions
from repro.analysis.linter import noqa_map
from repro.analysis.rules import Finding
from repro.experiments.runner import main as bgpbench

FIXTURES = Path(__file__).parent / "fixtures" / "flow"
FLOW_RULE_IDS = ("RPR101", "RPR102", "RPR103", "RPR104")
REPO_ROOT = Path(__file__).parent.parent


def analyze_fixture(name: str):
    return analyze_paths([FIXTURES / name])


def build_project(tmp_path: Path, files: "dict[str, str]") -> ProjectGraph:
    """Materialise a {relative path: source} project and build its graph."""
    paths = []
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        paths.append(path)
    return ProjectGraph.build(sorted(paths))


class TestFixtures:
    @pytest.mark.parametrize("rule_id", FLOW_RULE_IDS)
    def test_bad_fixture_triggers_its_rule(self, rule_id):
        report = analyze_fixture(f"{rule_id.lower()}_bad.py")
        assert {f.rule_id for f in report.findings} == {rule_id}
        for finding in report.findings:
            assert finding.line > 0
            assert rule_id in finding.render()

    @pytest.mark.parametrize("rule_id", FLOW_RULE_IDS)
    def test_good_fixture_is_clean(self, rule_id):
        report = analyze_fixture(f"{rule_id.lower()}_good.py")
        assert report.findings == [], render_flow_text(report)

    def test_rpr101_message_names_source_and_sink(self):
        report = analyze_fixture("rpr101_bad.py")
        message = report.findings[0].message
        assert "time.time" in message
        assert ".schedule" in message

    def test_rpr102_message_names_entry_point(self):
        report = analyze_fixture("rpr102_bad.py")
        assert "run_cell()" in report.findings[0].message

    def test_rpr102_shard_entry_is_a_reachability_root(self):
        """The parallel engine's shard process entry (``_shard_main``)
        counts as a worker entry point for the shared-state census."""
        report = analyze_fixture("rpr102_shard_bad.py")
        assert {f.rule_id for f in report.findings} == {"RPR102"}
        assert "_shard_main()" in report.findings[0].message
        assert "_link_seq" in report.findings[0].message

    def test_rpr102_shard_good_twin_is_clean(self):
        report = analyze_fixture("rpr102_shard_good.py")
        assert report.findings == [], render_flow_text(report)


class TestCallGraph:
    def test_module_names_follow_package_layout(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "mod.py").write_text("")
        assert module_name_for(tmp_path / "pkg" / "mod.py") == "pkg.mod"
        assert module_name_for(tmp_path / "pkg" / "__init__.py") == "pkg"
        assert module_name_for(tmp_path / "loose.py") == "loose"

    def test_import_alias_resolves_to_project_edge(self, tmp_path):
        graph = build_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/util.py": "def helper():\n    return 1\n",
                "pkg/app.py": (
                    "from pkg.util import helper as h\n"
                    "def main():\n"
                    "    return h()\n"
                ),
            },
        )
        assert graph.calls["pkg.app.main"] == {"pkg.util.helper"}

    def test_relative_import_resolves_to_project_edge(self, tmp_path):
        graph = build_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/util.py": "def helper():\n    return 1\n",
                "pkg/sub/__init__.py": "",
                "pkg/sub/app.py": (
                    "from ..util import helper\n"
                    "def main():\n"
                    "    return helper()\n"
                ),
            },
        )
        assert graph.calls["pkg.sub.app.main"] == {"pkg.util.helper"}

    def test_resolve_relative_handles_levels(self):
        import ast

        node = ast.parse("from ..util import helper").body[0]
        assert resolve_relative("pkg.sub.app", False, node) == "pkg.util"
        node = ast.parse("from . import util").body[0]
        assert resolve_relative("pkg.app", False, node) == "pkg"
        node = ast.parse("from ....nope import x").body[0]
        assert resolve_relative("pkg.app", False, node) is None

    def test_self_method_call_resolves_within_class(self, tmp_path):
        graph = build_project(
            tmp_path,
            {
                "mod.py": """
                class Engine:
                    def step(self):
                        return self.advance()

                    def advance(self):
                        return 1
                """
            },
        )
        assert graph.calls["mod.Engine.step"] == {"mod.Engine.advance"}

    def test_unresolved_attribute_call_is_virtual(self, tmp_path):
        graph = build_project(
            tmp_path,
            {
                "mod.py": (
                    "def drive(router):\n"
                    "    return router.process_packet()\n"
                    "def process_packet():\n"
                    "    return 1\n"
                )
            },
        )
        assert graph.virtual["mod.drive"] == {"process_packet"}

    def test_external_call_resolves_dotted_path(self, tmp_path):
        graph = build_project(
            tmp_path,
            {"mod.py": "import time\ndef now():\n    return time.monotonic()\n"},
        )
        assert "time.monotonic" in graph.external["mod.now"]

    def test_reachability_crosses_virtual_dispatch(self, tmp_path):
        graph = build_project(
            tmp_path,
            {
                "mod.py": (
                    "def run_cell(spec):\n"
                    "    return spec.execute()\n"
                    "def execute():\n"
                    "    return 1\n"
                    "def unrelated():\n"
                    "    return 2\n"
                )
            },
        )
        assert graph.entry_points() == ["mod.run_cell"]
        reached = graph.reachable_from(graph.entry_points())
        assert "mod.execute" in reached
        assert "mod.unrelated" not in reached
        without = graph.reachable_from(graph.entry_points(), virtual_dispatch=False)
        assert "mod.execute" not in without


class TestTaint:
    def test_taint_propagates_through_two_helpers(self, tmp_path):
        graph = build_project(
            tmp_path,
            {
                "mod.py": """
                import time

                def raw():
                    return time.time()

                def laundered():
                    return raw() * 2

                def arm(sim):
                    sim.schedule(laundered(), "tick")
                """
            },
        )
        noqa = {name: noqa_map(info.source) for name, info in graph.modules.items()}
        tainted = tainted_functions(graph, noqa)
        assert "mod.raw" in tainted
        assert "mod.laundered" in tainted
        from repro.analysis.flow.taint import check_taint

        findings = check_taint(graph, noqa)
        assert [f.rule_id for f in findings] == ["RPR101"]
        assert "mod.arm" in findings[0].message

    def test_sanctioned_source_does_not_root_taint(self, tmp_path):
        graph = build_project(
            tmp_path,
            {
                "mod.py": """
                import time

                def deadline():
                    return time.monotonic()  # repro: noqa[RPR001]

                def arm(sim):
                    sim.schedule(deadline(), "timeout")
                """
            },
        )
        noqa = {name: noqa_map(info.source) for name, info in graph.modules.items()}
        assert tainted_functions(graph, noqa) == {}


class TestBaseline:
    def make_finding(self, message="m", rule_id="RPR102"):
        return Finding(
            path="src/repro/bgp/attributes.py",
            line=10,
            col=0,
            rule_id=rule_id,
            message=message,
            severity="error",
        )

    def test_normalize_path_is_machine_independent(self):
        assert (
            normalize_path("/home/a/repo/src/repro/bgp/attributes.py")
            == "repro/bgp/attributes.py"
        )
        assert (
            normalize_path("C:\\work\\src\\repro\\grid\\cells.py")
            == "repro/grid/cells.py"
        )
        assert normalize_path("tests/fixtures/flow/rpr101_bad.py") == (
            "flow/rpr101_bad.py"
        )

    def test_key_excludes_line_numbers(self):
        a = self.make_finding()
        b = Finding(
            path=a.path, line=99, col=7, rule_id=a.rule_id,
            message=a.message, severity="error",
        )
        assert finding_key(a) == finding_key(b)

    def test_save_load_round_trip(self, tmp_path):
        findings = [self.make_finding("one"), self.make_finding("two")]
        path = save_baseline(tmp_path / "b.json", findings)
        assert load_baseline(path) == {finding_key(f) for f in findings}

    def test_apply_baseline_splits_new_and_stale(self, tmp_path):
        kept = self.make_finding("kept")
        removed = self.make_finding("removed")
        fresh = self.make_finding("fresh")
        path = save_baseline(tmp_path / "b.json", [kept, removed])
        new, baselined, stale = apply_baseline([kept, fresh], load_baseline(path))
        assert new == [fresh]
        assert baselined == 1
        assert stale == [finding_key(removed)]

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_committed_baseline_matches_tree(self):
        """The repo invariant: the source tree, filtered through the
        committed baseline, produces zero new findings and no stale
        baseline entries."""
        report = analyze_paths(baseline_path=REPO_ROOT / DEFAULT_BASELINE)
        assert report.findings == [], render_flow_text(report)
        assert report.stale_baseline == []
        assert report.parse_errors == []
        assert report.baselined > 0  # the _cache_counters debt is pinned


class TestSarif:
    def test_log_shape_and_rule_metadata(self):
        report = analyze_fixture("rpr103_bad.py")
        log = to_sarif(report.findings)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-flow"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == list(FLOW_RULE_IDS)
        result = run["results"][0]
        assert result["ruleId"] == "RPR103"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] > 0 and region["startColumn"] > 0

    def test_rule_index_points_into_rules_array(self):
        report = analyze_fixture("rpr101_bad.py")
        log = to_sarif(report.findings)
        run = log["runs"][0]
        for result in run["results"]:
            index = result["ruleIndex"]
            assert run["tool"]["driver"]["rules"][index]["id"] == result["ruleId"]


class TestReport:
    def test_rule_registry_complete(self):
        assert flow_rule_ids() == list(FLOW_RULE_IDS)
        for rule in FLOW_RULES.values():
            assert rule.title and rule.rationale
            assert rule.severity in ("error", "warning")

    def test_json_report_shape(self):
        report = analyze_fixture("rpr102_bad.py")
        payload = json.loads(render_flow_json(report))
        assert payload["ok"] is False
        assert payload["counts_by_rule"] == {"RPR102": 1}
        assert payload["findings"][0]["rule_id"] == "RPR102"

    def test_text_report_summarises(self):
        report = analyze_fixture("rpr104_bad.py")
        text = render_flow_text(report)
        assert "RPR104" in text
        assert "new finding(s)" in text

    def test_select_restricts_rules(self):
        report = analyze_paths([FIXTURES], select=["RPR103"])
        assert set(report.counts_by_rule()) == {"RPR103"}
        with pytest.raises(ValueError):
            analyze_paths([FIXTURES], select=["RPR999"])

    def test_line_noqa_suppresses_flow_finding(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text(
            "_cache = {}\n"
            "def run_cell(spec):\n"
            "    _cache[spec] = spec  # repro: noqa[RPR102]\n"
        )
        report = analyze_paths([bad])
        assert report.findings == []
        assert report.suppressed == 1

    def test_binding_noqa_exempts_global_wholesale(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text(
            "_cache = {}  # repro: noqa[RPR102]\n"
            "def run_cell(spec):\n"
            "    _cache[spec] = spec\n"
        )
        report = analyze_paths([bad])
        assert report.findings == []


class TestCli:
    def test_flow_bad_fixture_exits_nonzero(self, capsys):
        code = bgpbench(["lint", "--flow", str(FIXTURES / "rpr102_bad.py")])
        assert code == 1
        assert "RPR102" in capsys.readouterr().out

    def test_flow_good_fixture_exits_zero(self, capsys):
        assert bgpbench(["lint", "--flow", str(FIXTURES / "rpr102_good.py")]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_flow_update_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        fixture = str(FIXTURES / "rpr103_bad.py")
        assert (
            bgpbench(
                ["lint", "--flow", fixture, "--baseline", str(baseline), "--update-baseline"]
            )
            == 0
        )
        assert baseline.exists()
        capsys.readouterr()
        assert bgpbench(["lint", "--flow", fixture, "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_flow_sarif_written(self, tmp_path, capsys):
        sarif = tmp_path / "out.sarif"
        bgpbench(["lint", "--flow", str(FIXTURES / "rpr104_bad.py"), "--sarif", str(sarif)])
        capsys.readouterr()
        log = json.loads(sarif.read_text())
        assert log["runs"][0]["results"]

    def test_flow_json_format(self, capsys):
        code = bgpbench(
            ["lint", "--flow", "--format", "json", str(FIXTURES / "rpr101_bad.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts_by_rule"] == {"RPR101": 1}

    def test_list_rules_names_flow_rules(self, capsys):
        assert bgpbench(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in FLOW_RULE_IDS:
            assert rule_id in out
