"""Tests for multi-router propagation chains."""

import pytest

from repro.benchmark.chain import (
    ChainResult,
    build_router,
    connect_routers,
    run_chain_propagation,
)
from repro.sim.cpu import World
from repro.workload.tablegen import generate_table

SIZE = 300


class TestChainConstruction:
    def test_chain_routers_get_distinct_asns(self):
        world = World()
        a = build_router("pentium3", world, 0)
        b = build_router("pentium3", world, 1)
        assert a.speaker.config.asn != b.speaker.config.asn

    def test_connect_requires_shared_world(self):
        a = build_router("pentium3", World(), 0)
        b = build_router("pentium3", World(), 1)
        with pytest.raises(ValueError):
            connect_routers(a, "x", b, "y")

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            run_chain_propagation([])


class TestPropagation:
    def test_table_reaches_every_hop(self):
        result = run_chain_propagation(["pentium3"] * 3, table_size=SIZE)
        assert result.fib_sizes == [SIZE, SIZE, SIZE]
        assert all(t < float("inf") for t in result.fib_complete_at)

    def test_completion_monotonic_along_chain(self):
        result = run_chain_propagation(
            ["pentium3"] * 3, table_size=SIZE, prefixes_per_update=500
        )
        times = result.fib_complete_at
        assert times[0] <= times[1] <= times[2]

    def test_paths_accumulate_hop_asns(self):
        world = World()
        # Use run_chain_propagation then inspect the last router.
        result = run_chain_propagation(["pentium3", "pentium3"], table_size=50)
        assert result.end_to_end > 0

    def test_large_packets_store_and_forward(self):
        """One 500-prefix packet cannot leave a hop before the whole
        batch is processed: per-hop delays are substantial."""
        result = run_chain_propagation(
            ["pentium3"] * 3, table_size=500, prefixes_per_update=500
        )
        delays = result.per_hop_delays()
        assert delays[1] > 0.3 * delays[0]

    def test_small_packets_cut_through(self):
        """Per-prefix packets pipeline across hops: downstream completes
        almost together with upstream — far sooner than serial."""
        result = run_chain_propagation(
            ["pentium3"] * 3, table_size=200, prefixes_per_update=1
        )
        serial_estimate = 3 * result.fib_complete_at[0]
        assert result.end_to_end < 0.6 * serial_estimate

    def test_slowest_hop_dominates(self):
        fast = run_chain_propagation(["xeon", "xeon"], table_size=SIZE)
        mixed = run_chain_propagation(["xeon", "ixp2400"], table_size=SIZE)
        assert mixed.end_to_end > 5 * fast.end_to_end

    def test_supplied_table(self):
        table = generate_table(100, seed=9)
        result = run_chain_propagation(["pentium3"], table=table)
        assert result.table_size == 100
        assert result.fib_sizes == [100]

    def test_link_delay_adds_up(self):
        quick = run_chain_propagation(["xeon"] * 3, table_size=50, link_delay=0.0)
        slow = run_chain_propagation(["xeon"] * 3, table_size=50, link_delay=0.5)
        assert slow.end_to_end > quick.end_to_end + 0.9  # 2 links x 0.5s


class TestChainResult:
    def test_per_hop_delays(self):
        result = ChainResult(
            platforms=["a", "b"], table_size=1, fib_complete_at=[1.0, 3.5]
        )
        assert result.per_hop_delays() == [1.0, 2.5]
        assert result.end_to_end == 3.5

    def test_empty(self):
        assert ChainResult(platforms=[], table_size=0).end_to_end == 0.0
