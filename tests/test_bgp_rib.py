"""Unit tests for the three RIB structures."""

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib, RibRoute, RouteChange
from repro.net.addr import IPv4Address, Prefix

P1 = Prefix.parse("192.0.2.0/24")
P2 = Prefix.parse("198.51.100.0/24")
NH = IPv4Address.parse("10.0.0.1")
A1 = PathAttributes(as_path=AsPath.from_asns([65001]), next_hop=NH)
A2 = PathAttributes(as_path=AsPath.from_asns([65001, 65002]), next_hop=NH)


class TestAdjRibIn:
    def test_add_new(self):
        rib = AdjRibIn("peer1")
        assert rib.update(P1, A1) is RouteChange.ADDED
        assert rib.get(P1) == A1
        assert len(rib) == 1
        assert P1 in rib

    def test_implicit_withdraw_replaces(self):
        rib = AdjRibIn("peer1")
        rib.update(P1, A1)
        assert rib.update(P1, A2) is RouteChange.REPLACED
        assert rib.get(P1) == A2
        assert len(rib) == 1

    def test_identical_announcement_unchanged(self):
        rib = AdjRibIn("peer1")
        rib.update(P1, A1)
        assert rib.update(P1, A1) is RouteChange.UNCHANGED

    def test_withdraw(self):
        rib = AdjRibIn("peer1")
        rib.update(P1, A1)
        assert rib.withdraw(P1) is RouteChange.REMOVED
        assert rib.get(P1) is None
        assert len(rib) == 0

    def test_withdraw_absent(self):
        rib = AdjRibIn("peer1")
        assert rib.withdraw(P1) is RouteChange.ABSENT

    def test_clear(self):
        rib = AdjRibIn("peer1")
        rib.update(P1, A1)
        rib.update(P2, A2)
        assert rib.clear() == 2
        assert len(rib) == 0

    def test_iteration(self):
        rib = AdjRibIn("peer1")
        rib.update(P1, A1)
        rib.update(P2, A2)
        assert set(rib.prefixes()) == {P1, P2}
        assert dict(rib.items()) == {P1: A1, P2: A2}


class TestLocRib:
    def test_set_best_add(self):
        rib = LocRib()
        route = RibRoute(P1, A1, "peer1")
        assert rib.set_best(route) is RouteChange.ADDED
        assert rib.get(P1) == route
        assert P1 in rib

    def test_set_best_replace(self):
        rib = LocRib()
        rib.set_best(RibRoute(P1, A1, "peer1"))
        assert rib.set_best(RibRoute(P1, A2, "peer2")) is RouteChange.REPLACED
        assert rib.get(P1).peer_id == "peer2"

    def test_set_best_unchanged(self):
        rib = LocRib()
        rib.set_best(RibRoute(P1, A1, "peer1"))
        assert rib.set_best(RibRoute(P1, A1, "peer1")) is RouteChange.UNCHANGED

    def test_source_change_with_same_attributes_is_replace(self):
        rib = LocRib()
        rib.set_best(RibRoute(P1, A1, "peer1"))
        assert rib.set_best(RibRoute(P1, A1, "peer2")) is RouteChange.REPLACED

    def test_remove(self):
        rib = LocRib()
        rib.set_best(RibRoute(P1, A1, "peer1"))
        assert rib.remove(P1) is RouteChange.REMOVED
        assert rib.remove(P1) is RouteChange.ABSENT
        assert len(rib) == 0

    def test_routes_iteration(self):
        rib = LocRib()
        rib.set_best(RibRoute(P1, A1, "peer1"))
        rib.set_best(RibRoute(P2, A2, "peer1"))
        assert {r.prefix for r in rib.routes()} == {P1, P2}


class TestAdjRibOut:
    def test_stage_and_take(self):
        rib = AdjRibOut("peer1")
        assert rib.stage(P1, A1) is RouteChange.ADDED
        assert rib.has_pending()
        announce, withdraw = rib.take_pending()
        assert announce == {P1: A1}
        assert withdraw == set()
        assert not rib.has_pending()

    def test_stage_identical_is_unchanged(self):
        rib = AdjRibOut("peer1")
        rib.stage(P1, A1)
        rib.take_pending()
        assert rib.stage(P1, A1) is RouteChange.UNCHANGED
        assert not rib.has_pending()

    def test_stage_new_attributes_is_replace(self):
        rib = AdjRibOut("peer1")
        rib.stage(P1, A1)
        rib.take_pending()
        assert rib.stage(P1, A2) is RouteChange.REPLACED
        announce, _ = rib.take_pending()
        assert announce == {P1: A2}

    def test_withdraw_advertised(self):
        rib = AdjRibOut("peer1")
        rib.stage(P1, A1)
        rib.take_pending()
        assert rib.stage_withdraw(P1) is RouteChange.REMOVED
        announce, withdraw = rib.take_pending()
        assert announce == {}
        assert withdraw == {P1}
        assert rib.advertised(P1) is None

    def test_withdraw_never_advertised(self):
        rib = AdjRibOut("peer1")
        assert rib.stage_withdraw(P1) is RouteChange.ABSENT
        assert not rib.has_pending()

    def test_announce_then_withdraw_before_flush_cancels(self):
        rib = AdjRibOut("peer1")
        rib.stage(P1, A1)
        rib.stage_withdraw(P1)
        announce, withdraw = rib.take_pending()
        assert announce == {}
        # The prefix was advertised (staged) then withdrawn: the
        # withdrawal must be emitted because stage() recorded it as
        # advertised state.
        assert withdraw == {P1}

    def test_withdraw_then_reannounce_before_flush(self):
        rib = AdjRibOut("peer1")
        rib.stage(P1, A1)
        rib.take_pending()
        rib.stage_withdraw(P1)
        rib.stage(P1, A2)
        announce, withdraw = rib.take_pending()
        assert announce == {P1: A2}
        assert withdraw == set()

    def test_len_tracks_advertised(self):
        rib = AdjRibOut("peer1")
        rib.stage(P1, A1)
        rib.stage(P2, A2)
        assert len(rib) == 2
        rib.stage_withdraw(P1)
        assert len(rib) == 1


class TestSnapshotIterators:
    """Iterators must be snapshots: mutating the RIB mid-iteration is
    exactly what the speaker does when it withdraws routes while
    walking an Adj-RIB-In during session teardown, and historically
    raised ``RuntimeError: dictionary changed size during iteration``."""

    def test_adj_rib_in_mutate_while_iterating(self):
        rib = AdjRibIn("peer1")
        rib.update(P1, A1)
        rib.update(P2, A2)
        seen = []
        for prefix in rib.prefixes():
            rib.withdraw(prefix)  # must not blow up the iteration
            rib.update(Prefix(prefix.network + 256, prefix.length), A1)
            seen.append(prefix)
        assert seen == [P1, P2]

        for prefix, _attrs in rib.items():
            rib.withdraw(prefix)
        assert len(rib) == 0

    def test_loc_rib_mutate_while_iterating(self):
        rib = LocRib()
        rib.set_best(RibRoute(P1, A1, "peer1"))
        rib.set_best(RibRoute(P2, A2, "peer1"))
        seen = []
        for route in rib.routes():
            rib.remove(route.prefix)
            seen.append(route.prefix)
        assert seen == [P1, P2]
        assert len(rib) == 0
        for prefix in LocRib().prefixes():
            raise AssertionError(f"empty RIB yielded {prefix}")

    def test_iteration_order_is_network_then_length(self):
        rib = AdjRibIn("peer1")
        prefixes = [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.0.0.0/16"),
            Prefix.parse("10.0.0.0/24"),
            Prefix.parse("9.0.0.0/8"),
            Prefix.parse("192.0.2.0/24"),
        ]
        for prefix in reversed(prefixes):
            rib.update(prefix, A1)
        assert list(rib.prefixes()) == sorted(
            prefixes, key=lambda p: (p.network, p.length)
        )
