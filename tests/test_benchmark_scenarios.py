"""Unit tests for the Table I scenario definitions."""

import pytest

from repro.benchmark.scenarios import LARGE, SCENARIOS, get_scenario


class TestTableI:
    def test_eight_scenarios(self):
        assert sorted(SCENARIOS) == list(range(1, 9))

    def test_packet_sizes_alternate(self):
        for number, scenario in SCENARIOS.items():
            expected = 1 if number % 2 == 1 else LARGE
            assert scenario.prefixes_per_update == expected
            assert scenario.packet_size == ("small" if number % 2 else "large")

    def test_operations(self):
        assert SCENARIOS[1].operation == "start-up"
        assert SCENARIOS[2].operation == "start-up"
        assert SCENARIOS[3].operation == "ending"
        assert SCENARIOS[4].operation == "ending"
        for number in (5, 6, 7, 8):
            assert SCENARIOS[number].operation == "incremental"

    def test_update_types(self):
        assert SCENARIOS[3].update_type == "WITHDRAW"
        assert SCENARIOS[4].update_type == "WITHDRAW"
        for number in (1, 2, 5, 6, 7, 8):
            assert SCENARIOS[number].update_type == "ANNOUNCE"

    def test_fib_changes_row(self):
        # Table I: FIB changes yes for 1-4 and 7-8, no for 5-6.
        for number in (1, 2, 3, 4, 7, 8):
            assert SCENARIOS[number].fib_changes
        for number in (5, 6):
            assert not SCENARIOS[number].fib_changes

    def test_measured_phase(self):
        assert SCENARIOS[1].measured_phase == 1
        assert SCENARIOS[2].measured_phase == 1
        for number in range(3, 9):
            assert SCENARIOS[number].measured_phase == 3

    def test_second_speaker_only_for_incremental(self):
        for number in (1, 2, 3, 4):
            assert not SCENARIOS[number].uses_second_speaker
        for number in (5, 6, 7, 8):
            assert SCENARIOS[number].uses_second_speaker

    def test_path_variation(self):
        assert SCENARIOS[5].path_extra_hops == 2
        assert SCENARIOS[6].path_extra_hops == 2
        assert SCENARIOS[7].path_extra_hops == -2
        assert SCENARIOS[8].path_extra_hops == -2
        assert SCENARIOS[1].path_extra_hops == 0


class TestGetScenario:
    def test_by_number(self):
        assert get_scenario(5) is SCENARIOS[5]

    def test_identity_pass_through(self):
        assert get_scenario(SCENARIOS[2]) is SCENARIOS[2]

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_scenario(9)


class TestRenderTable1:
    def test_contains_all_scenarios(self):
        from repro.benchmark.scenarios import render_table1

        text = render_table1()
        assert text.startswith("Table I")
        for number in range(1, 9):
            assert f"\n{number:>9} " in text
        assert "WITHDRAW" in text and "ANNOUNCE" in text

    def test_cli_scenarios_command(self, capsys):
        from repro.experiments.runner import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
