"""Unit tests for the platform registry and factory."""

import pytest

from repro.systems.platforms import ALIASES, PLATFORMS, build_system, get_spec
from repro.systems.router import CiscoRouter, XorpRouter


class TestRegistry:
    def test_four_platforms(self):
        assert set(PLATFORMS) == {"pentium3", "xeon", "ixp2400", "cisco"}

    def test_specs_match_table2(self):
        assert PLATFORMS["pentium3"].cores == 1
        assert PLATFORMS["xeon"].cores == 2
        assert PLATFORMS["xeon"].threads_per_core == 2
        assert PLATFORMS["ixp2400"].forwarding.kind == "offload"
        assert PLATFORMS["cisco"].kind == "cisco"

    def test_forwarding_caps_match_paper(self):
        assert PLATFORMS["pentium3"].forwarding.max_mbps == 315.0
        assert PLATFORMS["xeon"].forwarding.max_mbps == 784.0
        assert PLATFORMS["ixp2400"].forwarding.max_mbps == 940.0
        assert PLATFORMS["cisco"].forwarding.max_mbps == 78.0

    def test_relative_speeds_ordered(self):
        assert (
            PLATFORMS["xeon"].speed
            > PLATFORMS["pentium3"].speed
            > PLATFORMS["ixp2400"].speed
        )

    def test_rtrmgr_heavier_on_ixp(self):
        assert (
            PLATFORMS["ixp2400"].rtrmgr_background
            > PLATFORMS["pentium3"].rtrmgr_background
        )


class TestLookup:
    def test_get_spec_canonical(self):
        assert get_spec("xeon").name == "xeon"

    def test_get_spec_case_insensitive(self):
        assert get_spec("XEON").name == "xeon"

    def test_aliases(self):
        for alias, canonical in ALIASES.items():
            assert get_spec(alias).name == canonical

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            get_spec("cray")


class TestBuildSystem:
    def test_xorp_platforms(self):
        for name in ("pentium3", "xeon", "ixp2400"):
            router = build_system(name)
            assert isinstance(router, XorpRouter)
            assert router.spec.name == name

    def test_cisco(self):
        assert isinstance(build_system("cisco"), CiscoRouter)

    def test_fresh_instances(self):
        a, b = build_system("xeon"), build_system("xeon")
        assert a is not b
        assert a.speaker is not b.speaker

    def test_ixp_has_offload_machine(self):
        router = build_system("ixp2400")
        assert len(router.world.machines) == 2
        assert router.softnet.machine is not router.machine

    def test_shared_platform_single_machine(self):
        router = build_system("pentium3")
        assert len(router.world.machines) == 1
        assert router.softnet.blocked_by is router.kernel
