"""Unit tests for the OSPF model, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.igp.ospf import LinkStateDatabase, OspfNetwork, RouterLsa, shortest_paths
from repro.igp.topology import Topology


def diamond() -> Topology:
    """a - b - d and a - c - d, with the b path cheaper."""
    topology = Topology()
    topology.add_link("a", "b", 1.0)
    topology.add_link("b", "d", 1.0)
    topology.add_link("a", "c", 2.0)
    topology.add_link("c", "d", 2.0)
    return topology


class TestLsdb:
    def test_install_newer_sequence(self):
        lsdb = LinkStateDatabase()
        assert lsdb.install(RouterLsa("a", 1, (("b", 1.0),)))
        assert lsdb.install(RouterLsa("a", 2, (("b", 2.0),)))
        assert lsdb.get("a").sequence == 2

    def test_stale_lsa_rejected(self):
        lsdb = LinkStateDatabase()
        lsdb.install(RouterLsa("a", 2, (("b", 1.0),)))
        assert not lsdb.install(RouterLsa("a", 1, (("b", 9.0),)))
        assert not lsdb.install(RouterLsa("a", 2, (("b", 9.0),)))

    def test_graph_requires_bidirectional_advertisement(self):
        lsdb = LinkStateDatabase()
        lsdb.install(RouterLsa("a", 1, (("b", 1.0),)))
        # b has not advertised the link back: unusable.
        assert lsdb.graph() == {}
        lsdb.install(RouterLsa("b", 1, (("a", 1.0),)))
        assert lsdb.graph() == {"a": [("b", 1.0)], "b": [("a", 1.0)]}


class TestSpf:
    def test_diamond_prefers_cheap_path(self):
        network = OspfNetwork(diamond())
        network.announce_all()
        router = network.routers["a"]
        assert router.next_hop("d") == "b"
        assert router.cost_to("d") == 2.0

    def test_unreachable_absent(self):
        topology = diamond()
        topology.add_router("island")
        network = OspfNetwork(topology)
        network.announce_all()
        assert network.routers["a"].next_hop("island") is None

    def test_link_failure_reroutes(self):
        topology = diamond()
        network = OspfNetwork(topology)
        network.announce_all()
        topology.remove_link("a", "b")
        network.link_event("a", "b")
        router = network.routers["a"]
        assert router.next_hop("d") == "c"
        assert router.cost_to("d") == 4.0

    def test_cost_change_reroutes(self):
        topology = diamond()
        network = OspfNetwork(topology)
        network.announce_all()
        topology.set_cost("a", "b", 10.0)
        network.link_event("a", "b")
        assert network.routers["a"].next_hop("d") == "c"

    def test_flooding_converges_lsdbs(self):
        network = OspfNetwork(Topology.ring(6))
        network.announce_all()
        assert network.converged()
        sizes = {len(r.lsdb) for r in network.routers.values()}
        assert sizes == {6}

    def test_next_hops_consistent_no_loops(self):
        """Following next hops from any source reaches the destination
        without revisiting a router (SPF trees are loop-free)."""
        network = OspfNetwork(Topology.ring(8))
        network.announce_all()
        for source in network.routers:
            for destination in network.routers:
                if source == destination:
                    continue
                current, seen = source, set()
                while current != destination:
                    assert current not in seen, "forwarding loop"
                    seen.add(current)
                    current = network.routers[current].next_hop(destination)
                    assert current is not None

    def test_spf_run_counter(self):
        network = OspfNetwork(diamond())
        network.announce_all()
        assert all(r.spf_runs == 1 for r in network.routers.values())
        network.link_event("a", "b")
        assert all(r.spf_runs == 2 for r in network.routers.values())


class TestAgainstNetworkx:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=9), st.data())
    def test_costs_match_dijkstra_reference(self, n, data):
        # Random connected-ish graph: a spanning line plus extra edges.
        topology = Topology.line(n)
        extra = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=1, max_value=10),
                ),
                max_size=8,
            )
        )
        for a, b, cost in extra:
            if a != b:
                topology.add_link(f"r{a}", f"r{b}", float(cost))

        graph = nx.Graph()
        for a, b, cost in topology.links():
            graph.add_edge(a, b, weight=cost)

        network = OspfNetwork(topology)
        network.announce_all()
        reference = dict(nx.all_pairs_dijkstra_path_length(graph, weight="weight"))
        for source, router in network.routers.items():
            for destination, (cost, _hop) in router.routing_table.items():
                assert cost == pytest.approx(reference[source][destination]), (
                    source,
                    destination,
                )

    def test_shortest_paths_tie_break_deterministic(self):
        adjacency = {
            "s": [("a", 1.0), ("b", 1.0)],
            "a": [("s", 1.0), ("t", 1.0)],
            "b": [("s", 1.0), ("t", 1.0)],
            "t": [("a", 1.0), ("b", 1.0)],
        }
        for _ in range(5):
            table = shortest_paths(adjacency, "s")
            assert table["t"] == (2.0, "a")  # lexicographically smaller hop
