"""Unit tests for the FIB."""

from repro.forwarding.fib import Fib
from repro.net.addr import IPv4Address, Prefix

P1 = Prefix.parse("192.0.2.0/24")
P2 = Prefix.parse("10.0.0.0/8")
NH1 = IPv4Address.parse("10.0.0.1")
NH2 = IPv4Address.parse("10.0.0.2")


class TestFibSinkProtocol:
    def test_add_route(self):
        fib = Fib()
        fib.add_route(P1, NH1)
        assert len(fib) == 1
        assert P1 in fib
        assert fib.next_hop_for(P1) == NH1
        assert fib.stats.adds == 1

    def test_replace_route(self):
        fib = Fib()
        fib.add_route(P1, NH1)
        fib.replace_route(P1, NH2)
        assert fib.next_hop_for(P1) == NH2
        assert len(fib) == 1
        assert fib.stats.replaces == 1

    def test_delete_route(self):
        fib = Fib()
        fib.add_route(P1, NH1)
        fib.delete_route(P1)
        assert len(fib) == 0
        assert P1 not in fib
        assert fib.stats.deletes == 1

    def test_changes_counter(self):
        fib = Fib()
        fib.add_route(P1, NH1)
        fib.replace_route(P1, NH2)
        fib.delete_route(P1)
        assert fib.stats.changes == 3


class TestLookup:
    def test_longest_match(self):
        fib = Fib()
        fib.add_route(P2, NH1)
        fib.add_route(Prefix.parse("10.1.0.0/16"), NH2)
        assert fib.lookup(IPv4Address.parse("10.1.2.3")) == NH2
        assert fib.lookup(IPv4Address.parse("10.2.0.1")) == NH1
        assert fib.stats.lookups == 2
        assert fib.stats.lookup_misses == 0

    def test_miss_counted(self):
        fib = Fib()
        fib.add_route(P1, NH1)
        assert fib.lookup(IPv4Address.parse("8.8.8.8")) is None
        assert fib.stats.lookup_misses == 1

    def test_routes_iteration(self):
        fib = Fib()
        fib.add_route(P1, NH1)
        fib.add_route(P2, NH2)
        assert dict(fib.routes()) == {P1: NH1, P2: NH2}


class TestSpeakerIntegration:
    def test_fib_tracks_loc_rib(self):
        """The Fib satisfies the FibSink protocol used by BgpSpeaker."""
        from repro.bgp.speaker import BgpSpeaker, SpeakerConfig

        fib = Fib()
        speaker = BgpSpeaker(
            SpeakerConfig(
                asn=65000,
                bgp_identifier=IPv4Address.parse("1.1.1.1"),
                local_address=IPv4Address.parse("10.0.0.254"),
            ),
            fib=fib,
        )
        speaker.originate(P1)
        assert fib.next_hop_for(P1) == speaker.config.local_address
        speaker.withdraw_local(P1)
        assert len(fib) == 0
