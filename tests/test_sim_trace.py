"""Tests for the execution trace journal."""

import pytest

from repro.sim.cpu import Priority, World
from repro.sim.trace import ExecutionTrace


def make_world():
    world = World()
    machine = world.new_machine("m", cores=1)
    return world, machine


class TestJournal:
    def test_single_job_interval(self):
        world, machine = make_world()
        trace = ExecutionTrace(machine)
        machine.new_task("t").submit(2.0)
        world.run()
        intervals = trace.intervals("t")
        assert len(intervals) == 1
        assert intervals[0].start == 0.0
        assert intervals[0].end == pytest.approx(2.0)
        assert intervals[0].cpu_seconds == pytest.approx(2.0)
        assert trace.busy_seconds("t") == pytest.approx(2.0)

    def test_consecutive_intervals_coalesce(self):
        world, machine = make_world()
        trace = ExecutionTrace(machine)
        task = machine.new_task("t")
        task.submit(1.0)
        task.submit(1.0)  # back-to-back jobs: one coalesced interval
        world.run()
        assert len(trace.intervals("t")) == 1
        assert trace.busy_seconds("t") == pytest.approx(2.0)

    def test_gap_creates_new_interval(self):
        world, machine = make_world()
        trace = ExecutionTrace(machine)
        task = machine.new_task("t")
        task.submit(1.0)
        world.sim.schedule(3.0, lambda: task.submit(1.0))
        world.run()
        intervals = trace.intervals("t")
        assert len(intervals) == 2
        assert intervals[1].start == pytest.approx(3.0)

    def test_pipeline_ordering_visible(self):
        """A two-stage chain shows stage 2 starting when stage 1 ends."""
        world, machine = make_world()
        trace = ExecutionTrace(machine)
        first = machine.new_task("first")
        second = machine.new_task("second")
        first.submit(1.0, lambda: second.submit(1.0))
        world.run()
        assert trace.last_activity("first") == pytest.approx(
            trace.first_activity("second")
        )

    def test_idle_task_absent(self):
        world, machine = make_world()
        trace = ExecutionTrace(machine)
        machine.new_task("busy").submit(0.5)
        machine.new_task("idle")
        world.run()
        assert trace.tasks() == ["busy"]
        assert trace.first_activity("idle") is None

    def test_all_intervals_iteration(self):
        world, machine = make_world()
        trace = ExecutionTrace(machine)
        machine.new_task("a").submit(0.5)
        machine.new_task("b").submit(0.5)
        world.run()
        assert len(list(trace.all_intervals())) == 2


class TestGantt:
    def test_empty(self):
        _world, machine = make_world()
        trace = ExecutionTrace(machine)
        assert trace.gantt() == "(no activity)"

    def test_rows_per_task(self):
        world, machine = make_world()
        trace = ExecutionTrace(machine)
        machine.new_task("alpha").submit(1.0)
        machine.new_task("beta").submit(1.0)
        world.run()
        chart = trace.gantt(width=40)
        lines = chart.splitlines()
        assert lines[0].startswith("alpha")
        assert lines[1].startswith("beta")
        assert "#" in lines[0] and "#" in lines[1]

    def test_router_trace_integration(self):
        """Tracing a real benchmark run shows the XORP stages."""
        from repro.benchmark.harness import (
            SPEAKER1,
            SPEAKER1_ADDR,
            SPEAKER1_ASN,
            stream_packets,
        )
        from repro.bgp.policy import ACCEPT_ALL
        from repro.bgp.speaker import PeerConfig
        from repro.systems import build_system
        from repro.workload.tablegen import generate_table
        from repro.workload.updates import UpdateStreamBuilder

        router = build_system("pentium3")
        trace = ExecutionTrace(router.machine)
        router.add_peer(PeerConfig(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR,
                                   ACCEPT_ALL, ACCEPT_ALL))
        router.handshake(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR)
        builder = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)
        table = generate_table(30, seed=6)
        stream_packets(router, SPEAKER1, builder.announcements(table, 1), 4)
        for stage in ("interrupts", "xorp_bgp", "xorp_rib", "xorp_fea", "kernel-fib"):
            assert trace.busy_seconds(stage) > 0, stage
        # Stage ordering: interrupts first, kernel FIB later.
        assert trace.first_activity("interrupts") <= trace.first_activity("kernel-fib")
