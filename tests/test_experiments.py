"""Tests for the per-table/figure experiment runners.

These use small tables to stay fast; the full-size regenerations live in
benchmarks/.
"""

import pytest

from repro.experiments.fig3 import FIG3_PLATFORMS, XORP_PROCESSES, run_fig3
from repro.experiments.fig4 import busy_overlap_fraction, run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import CATEGORIES, categorise, run_fig6
from repro.experiments.paperdata import PAPER_TABLE3, PLATFORM_ORDER
from repro.experiments.runner import build_parser, main
from repro.experiments.table3 import render, run_table3

SIZE = 250

#: Table III needs several large (500-prefix) packets per phase for the
#: pipelined platforms to behave representatively.
TABLE3_SIZE = 1000


@pytest.fixture(scope="module")
def table3_result():
    return run_table3(table_size=TABLE3_SIZE)


class TestTable3:
    def test_grid_complete(self, table3_result):
        assert set(table3_result.measured) == set(PLATFORM_ORDER)
        for platform in PLATFORM_ORDER:
            assert sorted(table3_result.measured[platform]) == list(range(1, 9))

    def test_all_qualitative_checks_pass(self, table3_result):
        failing = [claim for claim, ok in table3_result.checks().items() if not ok]
        assert not failing, failing

    def test_pentium3_close_to_paper(self, table3_result):
        """The reference platform is the calibration anchor: every
        scenario within 35% of the paper (most are within a few %)."""
        for scenario in range(1, 9):
            measured = table3_result.measured["pentium3"][scenario]
            paper = PAPER_TABLE3["pentium3"][scenario]
            assert 0.65 < measured / paper < 1.35, (scenario, measured, paper)

    def test_cisco_close_to_paper(self, table3_result):
        for scenario in range(1, 9):
            measured = table3_result.measured["cisco"][scenario]
            paper = PAPER_TABLE3["cisco"][scenario]
            assert 0.6 < measured / paper < 1.4, (scenario, measured, paper)

    def test_every_platform_within_2x_on_most_scenarios(self, table3_result):
        for platform in PLATFORM_ORDER:
            within = sum(
                1
                for s in range(1, 9)
                if 0.5 < table3_result.measured[platform][s] / PAPER_TABLE3[platform][s] < 2.0
            )
            assert within >= 6, platform

    def test_render_contains_all_cells(self, table3_result):
        text = render(table3_result)
        assert "Scenario 8" in text
        assert "Qualitative checks" in text
        assert "FAIL" not in text


class TestFig3:
    def test_platforms_and_processes(self):
        result = run_fig3(table_size=SIZE)
        assert set(result.series) == set(FIG3_PLATFORMS)
        for platform in FIG3_PLATFORMS:
            assert set(result.series[platform]) == set(XORP_PROCESSES)

    def test_time_ordering_xeon_fastest_ixp_slowest(self):
        result = run_fig3(table_size=SIZE)
        assert (
            result.total_time["xeon"]
            < result.total_time["pentium3"]
            < result.total_time["ixp2400"]
        )

    def test_rtrmgr_relatively_heavier_on_ixp(self):
        """Figure 3(c): xorp_rtrmgr is a considerable share on the XScale."""
        result = run_fig3(table_size=SIZE)

        def rtrmgr_share(platform):
            series = result.series[platform]
            total = sum(sum(v for _t, v in s) for s in series.values())
            rtrmgr = sum(v for _t, v in series["xorp_rtrmgr"])
            return rtrmgr / total if total else 0.0

        assert rtrmgr_share("ixp2400") > 3 * rtrmgr_share("pentium3")


class TestFig4:
    def test_large_packets_finish_sooner(self):
        result = run_fig4(table_size=SIZE)
        assert result.duration[2] < result.duration[1]
        assert result.tps[2] > result.tps[1]

    def test_competition_signature(self):
        """Small packets: bgp/fea/rib compete more of the time."""
        result = run_fig4(table_size=1000)
        small = busy_overlap_fraction(result.series[1])
        large = busy_overlap_fraction(result.series[2])
        assert small > large

    def test_busy_overlap_empty(self):
        assert busy_overlap_fraction({}) == 0.0


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(table_size=SIZE, points=3, scenarios=(1, 2))

    def test_ixp_flat(self, result):
        assert result.degradation(1, "ixp2400") == pytest.approx(1.0, abs=0.05)

    def test_pentium3_degrades(self, result):
        assert result.degradation(1, "pentium3") < 0.8

    def test_cisco_small_flat_large_collapses(self, result):
        assert result.degradation(1, "cisco") == pytest.approx(1.0, abs=0.1)
        assert result.degradation(2, "cisco") < 0.2

    def test_zero_traffic_matches_table3(self, result, table3_result=None):
        curve = result.series[1]["pentium3"]
        assert curve[0][0] == 0.0
        assert curve[0][1] == pytest.approx(
            PAPER_TABLE3["pentium3"][1], rel=0.35
        )


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(table_size=600)

    def test_interrupt_share_in_paper_band(self, result):
        assert 0.15 <= result.interrupt_share_during_run() <= 0.35

    def test_cross_traffic_slows_benchmark(self, result):
        assert result.duration["with-traffic"] > 1.2 * result.duration["no-traffic"]

    def test_forwarding_dips_during_phase3(self, result):
        assert result.min_forwarding_in_phase3() < 0.9 * result.cross_mbps

    def test_no_interrupts_without_traffic(self, result):
        series = result.cpu["no-traffic"]["interrupts"]
        assert all(v == pytest.approx(0.0, abs=0.5) for _t, v in series)

    def test_categorise_covers_all_tasks(self):
        cpu = {"xorp_bgp": [(0.0, 10.0)], "kernel-fib": [(0.0, 5.0)],
               "interrupts": [(0.0, 2.0)]}
        categories = categorise(cpu)
        assert set(categories) == set(CATEGORIES)
        assert categories["user"][0][1] == 10.0
        assert categories["system"][0][1] == 5.0
        assert categories["interrupts"][0][1] == 2.0


class TestRunnerCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["table3", "--table-size", "100"])
        assert args.command == "table3"
        assert args.table_size == 100

    def test_scenario_command(self, capsys):
        rc = main([
            "scenario", "--platform", "cisco", "--scenario", "2",
            "--table-size", "200",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cisco scenario 2" in out
        assert "transactions/s" in out

    def test_scenario_requires_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "--scenario", "1"])
