"""The chaos harness itself, and the CLI surface of resilient runs.

The chaos plan is test infrastructure, so it gets its own tests: fault
specs must round-trip through JSON (CI writes plan files), apply to
exactly the attempts they claim, and reject malformed input loudly —
a chaos plan that silently no-ops would green-light a broken supervisor.
"""

import json

import pytest

from repro.experiments.runner import EXIT_PARTIAL_FAILURE, main
from repro.grid import ChaosError, ChaosFault, ChaosPlan
from repro.grid.chaos import apply_chaos


class TestChaosSpecs:
    def test_plan_round_trips_through_json(self, tmp_path):
        plan = ChaosPlan.from_spec({
            "a": {"kind": "crash", "exit_code": 7},
            "b": {"kind": "hang", "hang_seconds": 2.5},
            "c": {"kind": "flaky", "times": 3},
        })
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_jsonable()))
        loaded = ChaosPlan.from_file(path)
        assert loaded == plan
        assert loaded.get("a").exit_code == 7
        assert loaded.get("b").hang_seconds == 2.5
        assert loaded.get("missing") is None

    def test_times_bounds_the_affected_attempts(self):
        fault = ChaosFault("flaky", times=2)
        assert fault.applies(0) and fault.applies(1)
        assert not fault.applies(2)
        always = ChaosFault("crash")
        assert always.applies(0) and always.applies(99)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosFault("segfault")

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos fault keys"):
            ChaosFault.from_spec({"kind": "crash", "exitcode": 1})

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ChaosFault("flaky", times=0)
        with pytest.raises(ValueError):
            ChaosFault("hang", hang_seconds=0.0)

    def test_flaky_raises_chaos_error_only_while_applicable(self):
        fault = ChaosFault("flaky", times=1)
        with pytest.raises(ChaosError, match="injected flaky fault"):
            apply_chaos(fault, attempt=0)
        apply_chaos(fault, attempt=1)  # past the budget: a no-op
        apply_chaos(None, attempt=0)   # no fault: a no-op


class TestGridCliResilience:
    CELL_ARGS = [
        "grid", "--scenarios", "1", "--platforms", "cisco", "pentium3",
        "--seeds", "7", "--table-sizes", "60", "--no-cache",
    ]

    def write_plan(self, tmp_path, spec):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_chaos_run_exits_partial_failure_with_manifest(self, tmp_path, capsys):
        plan = self.write_plan(
            tmp_path, {"s1-cisco-seed7-n60": {"kind": "crash"}}
        )
        manifest_path = tmp_path / "manifest.json"
        code = main([
            *self.CELL_ARGS, "--chaos", plan, "--retries", "1",
            "--journal", str(tmp_path / "journal.jsonl"),
            "--manifest", str(manifest_path),
        ])
        out = capsys.readouterr().out
        assert code == EXIT_PARTIAL_FAILURE
        assert "CRASHED" in out and "s1-cisco-seed7-n60" in out

        manifest = json.loads(manifest_path.read_text())
        failure = manifest["failures"]["s1-cisco-seed7-n60"]
        assert failure["outcome"] == "crashed"
        assert len(failure["attempts"]) == 2
        assert manifest["worker_crashes"] == 2
        assert list(manifest["results"]) == ["s1-pentium3-seed7-n60"]

    def test_flaky_cell_recovers_and_exits_zero(self, tmp_path, capsys):
        plan = self.write_plan(
            tmp_path, {"s1-pentium3-seed7-n60": {"kind": "flaky", "times": 1}}
        )
        code = main([
            *self.CELL_ARGS, "--chaos", plan, "--retries", "2",
            "--journal", str(tmp_path / "journal.jsonl"),
            "--output", str(tmp_path / "out.json"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 retries" in out

        # Byte-identical to an unsupervised clean run.
        clean = tmp_path / "clean.json"
        assert main([*self.CELL_ARGS, "--output", str(clean)]) == 0
        capsys.readouterr()
        assert (tmp_path / "out.json").read_text() == clean.read_text()

    def test_cli_resume_round_trip(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        plan = self.write_plan(
            tmp_path, {"s1-cisco-seed7-n60": {"kind": "crash"}}
        )
        code = main([*self.CELL_ARGS, "--chaos", plan, "--journal", journal])
        capsys.readouterr()
        assert code == EXIT_PARTIAL_FAILURE

        # The interrupting fault is gone; --resume finishes the run
        # without re-executing the completed cell.
        code = main([
            *self.CELL_ARGS, "--resume", "--journal", journal,
            "--output", str(tmp_path / "resumed.json"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 resumed" in out

        clean = tmp_path / "clean.json"
        assert main([*self.CELL_ARGS, "--output", str(clean)]) == 0
        capsys.readouterr()
        assert (tmp_path / "resumed.json").read_text() == clean.read_text()

    def test_strict_quarantines_and_reports(self, tmp_path, capsys):
        plan = self.write_plan(
            tmp_path, {"s1-cisco-seed7-n60": {"kind": "flaky"}}
        )
        code = main([
            *self.CELL_ARGS, "--workers", "1", "--chaos", plan, "--strict",
            "--journal", str(tmp_path / "journal.jsonl"),
        ])
        out = capsys.readouterr().out
        assert code == EXIT_PARTIAL_FAILURE
        assert "QUARANTINED" in out
