"""Tests for the multi-peer load driver and latency collection."""

import pytest

from repro.benchmark.harness import (
    SPEAKER1,
    SPEAKER1_ADDR,
    SPEAKER1_ASN,
    run_multipeer_startup,
    run_scenario,
    stream_interleaved,
    stream_packets,
)
from repro.bgp.policy import ACCEPT_ALL
from repro.bgp.speaker import PeerConfig
from repro.systems import build_system
from repro.workload.tablegen import generate_table
from repro.workload.updates import UpdateStreamBuilder

SIZE = 400


class TestMultiPeerDisjoint:
    def test_all_shards_installed(self):
        router = build_system("pentium3")
        result = run_multipeer_startup(router, peer_count=4, table_size=SIZE)
        assert result.transactions == SIZE
        assert result.fib_size_after == SIZE
        assert len(router.speaker.loc_rib) == SIZE

    def test_single_peer_matches_scenario1(self):
        multi = run_multipeer_startup(
            build_system("pentium3"), peer_count=1, table_size=SIZE
        )
        single = run_scenario(build_system("pentium3"), 1, table_size=SIZE)
        assert multi.transactions_per_second == pytest.approx(
            single.transactions_per_second, rel=0.05
        )

    def test_more_peers_cost_export_work(self):
        """With several established peers every learned route is
        re-advertised to the others, so per-prefix work rises — the
        multi-neighbour reality the paper's two-speaker setup isolates
        away in Phase 1."""
        one = run_multipeer_startup(build_system("pentium3"), 1, table_size=SIZE)
        four = run_multipeer_startup(build_system("pentium3"), 4, table_size=SIZE)
        assert four.transactions_per_second < 0.7 * one.transactions_per_second

    def test_peer_count_validation(self):
        with pytest.raises(ValueError):
            run_multipeer_startup(build_system("pentium3"), peer_count=0)

    def test_routes_spread_across_peers(self):
        router = build_system("pentium3")
        run_multipeer_startup(router, peer_count=4, table_size=SIZE)
        sources = {route.peer_id for route in router.speaker.loc_rib.routes()}
        assert sources == {f"peer{i}" for i in range(4)}


class TestMultiPeerOverlapping:
    def test_every_copy_processed_one_installed(self):
        router = build_system("pentium3")
        result = run_multipeer_startup(
            router, peer_count=3, table_size=200, disjoint=False
        )
        assert result.transactions == 600  # every copy is a transaction
        assert result.fib_size_after == 200

    def test_adj_ribs_hold_all_copies(self):
        router = build_system("pentium3")
        run_multipeer_startup(router, peer_count=3, table_size=150, disjoint=False)
        for index in range(3):
            assert len(router.speaker.peers[f"peer{index}"].adj_rib_in) == 150


class TestStreamInterleaved:
    def test_unequal_feed_lengths_drain_completely(self):
        router = build_system("pentium3")
        router.add_peer(PeerConfig(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR,
                                   ACCEPT_ALL, ACCEPT_ALL))
        router.handshake(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR)
        builder = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)
        table = generate_table(90, seed=3)
        long_feed = builder.announcements(table.entries[:60], 1)
        short_feed = builder.announcements(table.entries[60:], 1)
        stream_interleaved(
            router, [(SPEAKER1, long_feed), (SPEAKER1, short_feed)], window=4
        )
        assert len(router.speaker.loc_rib) == 90


class TestLatencyCollection:
    def prepared(self, platform="pentium3"):
        router = build_system(platform)
        router.collect_latency = True
        router.add_peer(PeerConfig(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR,
                                   ACCEPT_ALL, ACCEPT_ALL))
        router.handshake(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR)
        return router

    def test_latencies_recorded_per_packet(self):
        router = self.prepared()
        builder = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)
        table = generate_table(50, seed=2)
        stream_packets(router, SPEAKER1, builder.announcements(table, 1), 4)
        latencies = router.latencies()
        assert len(latencies) == 50
        assert all(latency > 0 for latency in latencies)

    def test_latency_near_per_prefix_cost_when_unloaded(self):
        router = self.prepared()
        builder = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)
        table = generate_table(20, seed=2)
        stream_packets(router, SPEAKER1, builder.announcements(table, 1), 1)
        # Window 1: each packet is alone in the router; latency equals
        # the scenario-1 per-prefix cost (~5.4 ms).
        for latency in router.latencies():
            assert latency == pytest.approx(5.37e-3, rel=0.05)

    def test_latency_grows_under_cross_traffic(self):
        def mean_latency(mbps):
            router = self.prepared()
            router.set_cross_traffic(mbps)
            builder = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)
            table = generate_table(30, seed=2)
            stream_packets(router, SPEAKER1, builder.announcements(table, 1), 1)
            values = router.latencies()
            return sum(values) / len(values)

        assert mean_latency(300.0) > 1.3 * mean_latency(0.0)

    def test_disabled_by_default(self):
        router = build_system("pentium3")
        assert not router.collect_latency
        assert router.latencies() == []

    def test_cisco_latency_includes_pacing_queue(self):
        router = self.prepared("cisco")
        builder = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)
        table = generate_table(10, seed=2)
        # Deliver all at once: the i-th packet waits i pacing intervals.
        for packet in builder.announcements(table, 1):
            router.deliver(SPEAKER1, packet)
        router.run_until_idle()
        latencies = router.latencies()
        assert len(latencies) == 10
        pacing = router.costs.pacing_interval
        assert latencies[-1] == pytest.approx(9 * pacing, rel=0.1)
