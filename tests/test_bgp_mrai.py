"""Unit tests for the MinRouteAdvertisementInterval gate."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.mrai import DEFAULT_EBGP_INTERVAL, MraiLimiter
from repro.net.addr import IPv4Address, Prefix

P1 = Prefix.parse("192.0.2.0/24")
P2 = Prefix.parse("198.51.100.0/24")
A1 = PathAttributes(as_path=AsPath.from_asns([1]), next_hop=IPv4Address.parse("10.0.0.1"))
A2 = PathAttributes(as_path=AsPath.from_asns([1, 2]), next_hop=IPv4Address.parse("10.0.0.1"))


class TestGate:
    def test_first_advertisement_passes(self):
        gate = MraiLimiter(interval=30.0)
        assert gate.offer(P1, A1, now=0.0) == (P1, A1)
        assert gate.passed == 1

    def test_rapid_second_change_withheld(self):
        gate = MraiLimiter(interval=30.0)
        gate.offer(P1, A1, now=0.0)
        assert gate.offer(P1, A2, now=5.0) is None
        assert gate.withheld == 1
        assert len(gate) == 1

    def test_change_after_interval_passes(self):
        gate = MraiLimiter(interval=30.0)
        gate.offer(P1, A1, now=0.0)
        assert gate.offer(P1, A2, now=31.0) == (P1, A2)

    def test_different_prefixes_independent(self):
        gate = MraiLimiter(interval=30.0)
        gate.offer(P1, A1, now=0.0)
        assert gate.offer(P2, A1, now=1.0) == (P2, A1)

    def test_zero_interval_disables(self):
        gate = MraiLimiter(interval=0.0)
        for t in (0.0, 0.1, 0.2):
            assert gate.offer(P1, A1, now=t) is not None

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            MraiLimiter(interval=-1.0)

    def test_default_interval(self):
        assert MraiLimiter().interval == DEFAULT_EBGP_INTERVAL


class TestCoalescing:
    def test_withheld_changes_coalesce_to_newest(self):
        gate = MraiLimiter(interval=30.0)
        gate.offer(P1, A1, now=0.0)
        gate.offer(P1, A2, now=5.0)   # withheld
        gate.offer(P1, None, now=10.0)  # withdraw, coalesces
        assert gate.coalesced == 1
        released = gate.release_due(now=31.0)
        assert released == [(P1, None)]

    def test_flap_batching_sends_one_update_per_interval(self):
        """Ten flaps inside one interval produce exactly one release —
        the mechanism that aggregates updates into large packets."""
        gate = MraiLimiter(interval=30.0)
        gate.offer(P1, A1, now=0.0)
        for i in range(10):
            gate.offer(P1, A1 if i % 2 else A2, now=1.0 + i)
        assert gate.release_due(now=30.0) == [(P1, A1)]
        assert len(gate) == 0


class TestRelease:
    def test_release_due_respects_interval(self):
        gate = MraiLimiter(interval=30.0)
        gate.offer(P1, A1, now=0.0)
        gate.offer(P1, A2, now=5.0)
        assert gate.release_due(now=20.0) == []
        assert gate.release_due(now=30.0) == [(P1, A2)]

    def test_release_resets_clock(self):
        gate = MraiLimiter(interval=30.0)
        gate.offer(P1, A1, now=0.0)
        gate.offer(P1, A2, now=5.0)
        gate.release_due(now=30.0)
        # A change right after the release is withheld again.
        assert gate.offer(P1, A1, now=31.0) is None

    def test_release_order_deterministic(self):
        gate = MraiLimiter(interval=10.0)
        for prefix in (P2, P1):
            gate.offer(prefix, A1, now=0.0)
            gate.offer(prefix, A2, now=1.0)
        released = gate.release_due(now=20.0)
        assert [p for p, _a in released] == sorted([P1, P2])

    def test_next_release_time(self):
        gate = MraiLimiter(interval=30.0)
        assert gate.next_release_time() is None
        gate.offer(P1, A1, now=0.0)
        gate.offer(P1, A2, now=5.0)
        assert gate.next_release_time() == pytest.approx(30.0)
