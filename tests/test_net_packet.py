"""Unit tests for the IPv4 packet model."""

import pytest

from repro.net.addr import IPv4Address
from repro.net.packet import IPv4Packet, PacketError

SRC = IPv4Address.parse("10.0.0.1")
DST = IPv4Address.parse("192.0.2.9")


def make_packet(**kwargs) -> IPv4Packet:
    defaults = dict(source=SRC, destination=DST, ttl=64, payload=b"hello")
    defaults.update(kwargs)
    return IPv4Packet(**defaults)


class TestEncodeDecode:
    def test_round_trip(self):
        packet = make_packet(protocol=17, identification=99, dscp=4)
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.source == SRC
        assert decoded.destination == DST
        assert decoded.ttl == 64
        assert decoded.protocol == 17
        assert decoded.identification == 99
        assert decoded.dscp == 4
        assert decoded.payload == b"hello"

    def test_round_trip_with_options(self):
        packet = make_packet(options=b"\x01\x01\x01\x00")
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.options == b"\x01\x01\x01\x00"
        assert decoded.payload == b"hello"

    def test_encode_sets_valid_checksum(self):
        packet = make_packet()
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.header_checksum_ok()

    def test_flags_and_fragment_offset(self):
        packet = make_packet(flags=2, fragment_offset=100)
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.flags == 2
        assert decoded.fragment_offset == 100

    def test_total_length(self):
        packet = make_packet(payload=b"x" * 100)
        assert packet.total_length == 120
        assert packet.header_length == 20


class TestDecodeErrors:
    def test_truncated_header(self):
        with pytest.raises(PacketError):
            IPv4Packet.decode(b"\x45" * 10)

    def test_wrong_version(self):
        data = bytearray(make_packet().encode())
        data[0] = (6 << 4) | 5
        with pytest.raises(PacketError):
            IPv4Packet.decode(bytes(data))

    def test_bad_ihl(self):
        data = bytearray(make_packet().encode())
        data[0] = (4 << 4) | 4  # IHL below minimum
        with pytest.raises(PacketError):
            IPv4Packet.decode(bytes(data))

    def test_total_length_too_large(self):
        data = bytearray(make_packet().encode())
        data[2:4] = (5000).to_bytes(2, "big")
        with pytest.raises(PacketError):
            IPv4Packet.decode(bytes(data))

    def test_truncated_options(self):
        packet = make_packet(options=b"\x01\x01\x01\x00")
        data = packet.encode()[:22]
        with pytest.raises(PacketError):
            IPv4Packet.decode(data)


class TestChecksumVerification:
    def test_corrupted_header_detected(self):
        data = bytearray(make_packet().encode())
        data[8] ^= 0xFF  # corrupt TTL
        decoded = IPv4Packet.decode(bytes(data))
        assert not decoded.header_checksum_ok()

    def test_missing_checksum_fails(self):
        packet = make_packet()
        assert packet.checksum is None
        assert not packet.header_checksum_ok()

    def test_unpadded_options_rejected_on_encode(self):
        packet = make_packet(options=b"\x01")
        with pytest.raises(PacketError):
            packet.encode()
