"""Speaker-level attribute semantics: MED, communities, and policy
interactions exercised through full wire-format processing."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import KeepaliveMessage, OpenMessage, UpdateMessage, decode_message
from repro.bgp.policy import Action, Match, Policy, PolicyResult, Rule
from repro.bgp.speaker import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.net.addr import IPv4Address, Prefix

P1 = Prefix.parse("192.0.2.0/24")
ROUTER_AS = 65000


def make_router(compare_med_always=False):
    return BgpSpeaker(
        SpeakerConfig(
            asn=ROUTER_AS,
            bgp_identifier=IPv4Address.parse("9.9.9.9"),
            local_address=IPv4Address.parse("10.0.0.254"),
            hold_time=0.0,
            compare_med_always=compare_med_always,
        )
    )


def connect(router, peer_id, asn, addr_text, bgp_id_text, **kwargs):
    addr = IPv4Address.parse(addr_text)
    router.add_peer(PeerConfig(peer_id, asn, addr, **kwargs))
    router.set_send_callback(peer_id, lambda data: None)
    router.start_peer(peer_id)
    router.transport_connected(peer_id)
    router.receive_bytes(peer_id, OpenMessage(asn, 0, IPv4Address.parse(bgp_id_text)).encode())
    router.receive_bytes(peer_id, KeepaliveMessage().encode())
    return addr


def announce(router, peer_id, attrs, prefixes=(P1,)):
    router.receive_bytes(
        peer_id, UpdateMessage(attributes=attrs, nlri=tuple(prefixes)).encode()
    )


class TestMedThroughSpeaker:
    def test_med_breaks_tie_same_neighbor_as(self):
        """Two sessions to the same neighbouring AS: lower MED wins."""
        router = make_router()
        a_addr = connect(router, "a", 65001, "10.0.1.1", "1.1.1.1")
        connect(router, "b", 65001, "10.0.1.2", "1.1.1.2")
        announce(router, "a", PathAttributes(
            as_path=AsPath.from_asns([65001, 300]), next_hop=a_addr, med=10))
        announce(router, "b", PathAttributes(
            as_path=AsPath.from_asns([65001, 300]),
            next_hop=IPv4Address.parse("10.0.1.2"), med=5))
        assert router.loc_rib.get(P1).peer_id == "b"

    def test_med_ignored_across_different_as(self):
        router = make_router()
        connect(router, "a", 65001, "10.0.1.1", "1.1.1.1")
        connect(router, "b", 65002, "10.0.1.2", "2.2.2.2")
        # a has worse MED but a lower router-id; different neighbour AS
        # means MED is skipped and the identifier decides.
        announce(router, "a", PathAttributes(
            as_path=AsPath.from_asns([65001, 300]),
            next_hop=IPv4Address.parse("10.0.1.1"), med=100))
        announce(router, "b", PathAttributes(
            as_path=AsPath.from_asns([65002, 300]),
            next_hop=IPv4Address.parse("10.0.1.2"), med=1))
        assert router.loc_rib.get(P1).peer_id == "a"

    def test_compare_med_always_config(self):
        router = make_router(compare_med_always=True)
        connect(router, "a", 65001, "10.0.1.1", "1.1.1.1")
        connect(router, "b", 65002, "10.0.1.2", "2.2.2.2")
        announce(router, "a", PathAttributes(
            as_path=AsPath.from_asns([65001, 300]),
            next_hop=IPv4Address.parse("10.0.1.1"), med=100))
        announce(router, "b", PathAttributes(
            as_path=AsPath.from_asns([65002, 300]),
            next_hop=IPv4Address.parse("10.0.1.2"), med=1))
        assert router.loc_rib.get(P1).peer_id == "b"


class TestCommunityPropagation:
    def test_communities_survive_transit(self):
        router = make_router()
        connect(router, "in", 65001, "10.0.1.1", "1.1.1.1")
        connect(router, "out", 65002, "10.0.1.2", "2.2.2.2")
        announce(router, "in", PathAttributes(
            as_path=AsPath.from_asns([65001]),
            next_hop=IPv4Address.parse("10.0.1.1"),
            communities=(65001 << 16 | 70, 65001 << 16 | 80)))
        packets = router.flush_updates("out")
        update = decode_message(packets[0])
        assert update.attributes.communities == (65001 << 16 | 70, 65001 << 16 | 80)

    def test_export_policy_can_strip_communities(self):
        strip = Policy([Rule(Match(), PolicyResult.ACCEPT, Action(strip_communities=True))])
        router = make_router()
        connect(router, "in", 65001, "10.0.1.1", "1.1.1.1")
        connect(router, "out", 65002, "10.0.1.2", "2.2.2.2", export_policy=strip)
        announce(router, "in", PathAttributes(
            as_path=AsPath.from_asns([65001]),
            next_hop=IPv4Address.parse("10.0.1.1"),
            communities=(99,)))
        update = decode_message(router.flush_updates("out")[0])
        assert update.attributes.communities == ()

    def test_import_policy_tags_routes(self):
        tag = Policy([Rule(Match(), PolicyResult.ACCEPT, Action(add_community=12345))])
        router = make_router()
        connect(router, "in", 65001, "10.0.1.1", "1.1.1.1", import_policy=tag)
        announce(router, "in", PathAttributes(
            as_path=AsPath.from_asns([65001]),
            next_hop=IPv4Address.parse("10.0.1.1")))
        assert 12345 in router.loc_rib.get(P1).attributes.communities


class TestPolicyPrependThroughSpeaker:
    def test_export_prepend_lengthens_advertised_path(self):
        prepend = Policy([Rule(Match(), PolicyResult.ACCEPT,
                               Action(prepend_as=ROUTER_AS, prepend_count=2))])
        router = make_router()
        connect(router, "in", 65001, "10.0.1.1", "1.1.1.1")
        connect(router, "out", 65002, "10.0.1.2", "2.2.2.2", export_policy=prepend)
        announce(router, "in", PathAttributes(
            as_path=AsPath.from_asns([65001]),
            next_hop=IPv4Address.parse("10.0.1.1")))
        update = decode_message(router.flush_updates("out")[0])
        # Policy prepends twice, the eBGP export prepends once more.
        assert update.attributes.as_path.all_asns() == (
            ROUTER_AS, ROUTER_AS, ROUTER_AS, 65001
        )

    def test_prepend_influences_downstream_decision(self):
        """A speaker that receives both the prepended and plain paths
        prefers the shorter one — traffic engineering end to end."""
        router = make_router()
        connect(router, "short", 65001, "10.0.1.1", "1.1.1.1")
        connect(router, "long", 65002, "10.0.1.2", "2.2.2.2")
        announce(router, "short", PathAttributes(
            as_path=AsPath.from_asns([65001, 300]),
            next_hop=IPv4Address.parse("10.0.1.1")))
        announce(router, "long", PathAttributes(
            as_path=AsPath.from_asns([65002, 65002, 65002, 300]),
            next_hop=IPv4Address.parse("10.0.1.2")))
        assert router.loc_rib.get(P1).peer_id == "short"
