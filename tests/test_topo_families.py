"""Tests for the topology benchmark families and their grid plumbing."""

import pytest

from repro.grid.baseline import bless, compare, load_golden, trim_for_golden
from repro.grid.cells import result_json
from repro.grid.executor import run_grid
from repro.topo.families import (
    TOPO_FAMILIES,
    TopoCell,
    default_topo_grid,
    pick_origins,
    run_topo_cell,
)
from repro.workload.astopo import AsTopology

# A tiny hierarchy (2x4x10 = 18 ASes) keeps each run in the tens of ms.
SMALL = dict(tier1=2, tier2=4, stubs=10)


class TestTopoCell:
    def test_cell_id_defaults(self):
        assert TopoCell(family="convergence").cell_id == (
            "topo-convergence-2x5x18-seed42"
        )

    def test_cell_id_suffixes(self):
        cell = TopoCell(
            family="churn",
            mrai=30.0,
            damping=True,
            origins=3,
            flaps=6,
            flap_interval=45.0,
            measured=1,
            platform="xeon",
        )
        assert cell.cell_id == (
            "topo-churn-2x5x18-seed42-mrai30-damp-o3-flap6x45-m1-xeon"
        )

    def test_flap_suffix_is_churn_only(self):
        cell = TopoCell(family="convergence", flaps=6)
        assert "flap" not in cell.cell_id

    def test_spec_roundtrip(self):
        for family in TOPO_FAMILIES:
            cell = TopoCell(family=family, mrai=15.0, origins=2, measured=1)
            assert TopoCell.from_spec(cell.spec()) == cell

    def test_to_jsonable_is_spec(self):
        cell = TopoCell(family="withdraw")
        assert cell.to_jsonable() == cell.spec()
        assert cell.spec()["kind"] == "topo"

    def test_key_varies_with_spec_and_fingerprint(self):
        a = TopoCell(family="convergence")
        b = TopoCell(family="withdraw")
        assert a.key("f1") != b.key("f1")
        assert a.key("f1") != a.key("f2")
        assert a.key("f1") == TopoCell(family="convergence").key("f1")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(family="flood"),
            dict(family="churn", tier1=0),
            dict(family="churn", stubs=1),
            dict(family="churn", origins=0),
            dict(family="churn", origins=99),
            dict(family="churn", link_delay=0.0),
            dict(family="churn", mrai=-1.0),
            dict(family="churn", flaps=0),
            dict(family="churn", flap_interval=0.0),
            dict(family="churn", measured=99),
            dict(family="churn", platform="vax"),
        ],
    )
    def test_invalid_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TopoCell(**kwargs)


class TestPickOrigins:
    def test_seeded_sorted_stub_sample(self):
        topology = AsTopology.hierarchy(seed=42, **SMALL)
        origins = pick_origins(topology, 3, seed=7)
        assert origins == pick_origins(topology, 3, seed=7)
        assert list(origins) == sorted(origins)
        for asn in origins:
            assert topology.tier_of(asn) == 3

    def test_too_many_origins_rejected(self):
        topology = AsTopology.hierarchy(seed=42, **SMALL)
        with pytest.raises(ValueError, match="stubs"):
            pick_origins(topology, 11, seed=7)


class TestRunTopoCell:
    def test_convergence_reaches_quiescence(self):
        result = run_topo_cell(TopoCell(family="convergence", **SMALL))
        assert result["completed"] is True
        assert result["transactions"] > 0
        assert result["fib_size_after"] > 0
        assert result["duration"] > 0
        assert result["cell"]["family"] == "convergence"
        assert len(result["nodes"]) == result["ases"]

    def test_withdraw_explores_ghost_paths(self):
        result = run_topo_cell(TopoCell(family="withdraw", **SMALL))
        assert result["completed"] is True
        assert result["fib_size_after"] == 0  # every route gone
        assert result["ghost_paths"] > 0  # path exploration happened

    def test_churn_damping_suppresses_flaps(self):
        cell = dict(family="churn", flaps=6, flap_interval=10.0, **SMALL)
        undamped = run_topo_cell(TopoCell(**cell))
        damped = run_topo_cell(TopoCell(damping=True, **cell))
        assert undamped["damping_suppressed"] == 0
        assert damped["damping_suppressed"] > 0
        # Suppression shields the graph from some of the churn.
        assert damped["updates_sent"] < undamped["updates_sent"]

    def test_byte_identical_across_runs(self):
        cell = TopoCell(family="withdraw", mrai=15.0, origins=2, **SMALL)
        a = run_topo_cell(cell)
        b = run_topo_cell(cell)
        assert result_json({cell.cell_id: a}) == result_json({cell.cell_id: b})

    def test_sanitize_is_observe_only(self):
        cell = TopoCell(family="convergence", **SMALL)
        plain = run_topo_cell(cell)
        checked = run_topo_cell(cell, sanitize=True)
        assert result_json({cell.cell_id: plain}) == result_json(
            {cell.cell_id: checked}
        )

    def test_telemetry_artifact_written_and_deterministic(self, tmp_path):
        cell = TopoCell(family="convergence", **SMALL)
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        a_dir.mkdir(), b_dir.mkdir()
        run_topo_cell(cell, telemetry_dir=str(a_dir))
        run_topo_cell(cell, telemetry_dir=str(b_dir))
        artifact = f"{cell.cell_id}.metrics.jsonl"
        a_bytes = (a_dir / artifact).read_bytes()
        assert a_bytes
        assert a_bytes == (b_dir / artifact).read_bytes()

    def test_hundred_as_graph_deterministic_and_sanitized(self):
        """The acceptance bar: a 100+-AS convergence run is clean under
        the sanitizer and byte-identical across runs."""
        cell = TopoCell(
            family="convergence", tier1=4, tier2=16, stubs=90, origins=3
        )
        a = run_topo_cell(cell, sanitize=True)
        b = run_topo_cell(cell, sanitize=True)
        assert a["ases"] == 110
        assert a["completed"] is True
        assert result_json({cell.cell_id: a}) == result_json({cell.cell_id: b})


class TestGridIntegration:
    def cells(self):
        return [
            TopoCell(family="convergence", **SMALL),
            TopoCell(family="withdraw", **SMALL),
        ]

    def test_run_grid_executes_topo_cells(self):
        report = run_grid(self.cells(), workers=2)
        assert report.ok
        assert set(report.results) == {cell.cell_id for cell in self.cells()}
        for result in report.results.values():
            assert result["cell"]["kind"] == "topo"

    def test_golden_roundtrip(self, tmp_path):
        report = run_grid(self.cells(), workers=1)
        grid = {"kind": "topo", "cells": [cell.spec() for cell in self.cells()]}
        path = bless(tmp_path / "topo.json", report.results, grid)
        golden = load_golden(path)
        assert golden["grid"] == grid
        fresh = {
            cell_id: trim_for_golden(result)
            for cell_id, result in run_grid(self.cells(), workers=1).results.items()
        }
        verdict = compare(golden["cells"], fresh)
        assert verdict.ok, verdict.format()

    def test_default_topo_grid_shape(self):
        cells = default_topo_grid()
        assert [cell.family for cell in cells] == [
            "convergence",
            "withdraw",
            "churn",
            "churn",
        ]
        assert cells[-1].damping
        assert len({cell.cell_id for cell in cells}) == len(cells)
