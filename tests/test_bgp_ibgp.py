"""Tests for iBGP semantics: split horizon, attribute handling."""

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import (
    KeepaliveMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
)
from repro.bgp.speaker import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.net.addr import IPv4Address, Prefix

ROUTER_AS = 65000
P1 = Prefix.parse("192.0.2.0/24")

EXT = "ext"              # eBGP neighbour in AS 65001
EXT_AS = 65001
EXT_ADDR = IPv4Address.parse("10.0.1.1")
IBGP_A, IBGP_B = "ibgp-a", "ibgp-b"   # internal peers, same AS
IBGP_A_ADDR = IPv4Address.parse("10.1.0.1")
IBGP_B_ADDR = IPv4Address.parse("10.1.0.2")


def make_router():
    return BgpSpeaker(
        SpeakerConfig(
            asn=ROUTER_AS,
            bgp_identifier=IPv4Address.parse("9.9.9.9"),
            local_address=IPv4Address.parse("10.0.0.254"),
            hold_time=0.0,
        )
    )


def connect(router, peer_id, asn, addr, bgp_id):
    router.add_peer(PeerConfig(peer_id, asn, addr))
    outbox = []
    router.set_send_callback(peer_id, outbox.append)
    router.start_peer(peer_id)
    router.transport_connected(peer_id)
    router.receive_bytes(peer_id, OpenMessage(asn, 0, bgp_id).encode())
    router.receive_bytes(peer_id, KeepaliveMessage().encode())
    assert router.peers[peer_id].established
    return outbox


def announce(router, peer_id, prefixes, attrs):
    router.receive_bytes(
        peer_id, UpdateMessage(attributes=attrs, nlri=tuple(prefixes)).encode()
    )


class TestSplitHorizon:
    def setup_triangle(self):
        router = make_router()
        connect(router, EXT, EXT_AS, EXT_ADDR, IPv4Address.parse("1.1.1.1"))
        connect(router, IBGP_A, ROUTER_AS, IBGP_A_ADDR, IPv4Address.parse("2.2.2.2"))
        connect(router, IBGP_B, ROUTER_AS, IBGP_B_ADDR, IPv4Address.parse("3.3.3.3"))
        return router

    def test_ibgp_peers_recognised(self):
        router = self.setup_triangle()
        assert router.peers[EXT].is_ebgp
        assert not router.peers[IBGP_A].is_ebgp
        assert not router.peers[IBGP_B].is_ebgp

    def test_ebgp_route_goes_to_all_peers(self):
        router = self.setup_triangle()
        attrs = PathAttributes(as_path=AsPath.from_asns([EXT_AS, 300]), next_hop=EXT_ADDR)
        announce(router, EXT, [P1], attrs)
        assert router.flush_updates(IBGP_A)
        assert router.flush_updates(IBGP_B)
        assert router.flush_updates(EXT) == []  # not back to the source

    def test_ibgp_route_not_reflected_to_ibgp(self):
        router = self.setup_triangle()
        # Route learned over iBGP (LOCAL_PREF present, own-AS path empty
        # of externals is fine for iBGP).
        attrs = PathAttributes(
            as_path=AsPath.from_asns([65009]),
            next_hop=IBGP_A_ADDR,
            local_pref=200,
        )
        announce(router, IBGP_A, [P1], attrs)
        assert len(router.loc_rib) == 1
        # Split horizon: other iBGP peer gets nothing...
        assert router.flush_updates(IBGP_B) == []
        # ...but the eBGP peer does.
        packets = router.flush_updates(EXT)
        assert len(packets) == 1

    def test_ibgp_export_preserves_local_pref_and_path(self):
        router = self.setup_triangle()
        attrs = PathAttributes(as_path=AsPath.from_asns([EXT_AS, 300]), next_hop=EXT_ADDR)
        announce(router, EXT, [P1], attrs)
        packets = router.flush_updates(IBGP_A)
        update = decode_message(packets[0])
        # iBGP export: no AS prepend, next hop preserved (no
        # next-hop-self in this implementation's iBGP path).
        assert update.attributes.as_path.all_asns() == (EXT_AS, 300)

    def test_ebgp_export_prepends_and_strips_local_pref(self):
        router = self.setup_triangle()
        attrs = PathAttributes(
            as_path=AsPath.from_asns([65009]), next_hop=IBGP_A_ADDR, local_pref=200
        )
        announce(router, IBGP_A, [P1], attrs)
        packets = router.flush_updates(EXT)
        update = decode_message(packets[0])
        assert update.attributes.as_path.all_asns() == (ROUTER_AS, 65009)
        assert update.attributes.local_pref is None
        assert update.attributes.next_hop == router.config.local_address

    def test_local_route_advertised_to_everyone(self):
        router = self.setup_triangle()
        router.originate(P1)
        for peer_id in (EXT, IBGP_A, IBGP_B):
            assert router.flush_updates(peer_id), peer_id

    def test_ibgp_local_pref_drives_decision(self):
        router = self.setup_triangle()
        # eBGP route with a shorter path but default LOCAL_PREF...
        announce(
            router, EXT, [P1],
            PathAttributes(as_path=AsPath.from_asns([EXT_AS]), next_hop=EXT_ADDR),
        )
        # ...loses to the iBGP route with LOCAL_PREF 200.
        announce(
            router, IBGP_A, [P1],
            PathAttributes(
                as_path=AsPath.from_asns([65009, 65010, 65011]),
                next_hop=IBGP_A_ADDR,
                local_pref=200,
            ),
        )
        assert router.loc_rib.get(P1).peer_id == IBGP_A
