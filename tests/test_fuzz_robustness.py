"""Fuzz-style robustness: arbitrary and mutated wire bytes must never
crash the speaker — every input is either processed or rejected through
the NOTIFICATION/teardown path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.fsm import State
from repro.bgp.messages import KeepaliveMessage, OpenMessage, UpdateMessage
from repro.bgp.speaker import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.net.addr import IPv4Address, Prefix

S1 = "s1"
S1_AS = 65001
S1_ADDR = IPv4Address.parse("10.0.1.1")


def connected_speaker():
    speaker = BgpSpeaker(
        SpeakerConfig(
            asn=65000,
            bgp_identifier=IPv4Address.parse("9.9.9.9"),
            local_address=IPv4Address.parse("10.0.0.254"),
            hold_time=0.0,
        )
    )
    speaker.add_peer(PeerConfig(S1, S1_AS, S1_ADDR))
    speaker.set_send_callback(S1, lambda data: None)
    speaker.start_peer(S1)
    speaker.transport_connected(S1)
    speaker.receive_bytes(S1, OpenMessage(S1_AS, 0, IPv4Address.parse("1.1.1.1")).encode())
    speaker.receive_bytes(S1, KeepaliveMessage().encode())
    return speaker


def valid_update() -> bytes:
    attrs = PathAttributes(
        as_path=AsPath.from_asns([S1_AS, 300]), next_hop=S1_ADDR
    )
    return UpdateMessage(
        attributes=attrs,
        nlri=(Prefix.parse("192.0.2.0/24"), Prefix.parse("198.51.100.0/24")),
    ).encode()


class TestRandomBytes:
    @settings(max_examples=150, deadline=None)
    @given(st.binary(max_size=200))
    def test_arbitrary_bytes_never_crash(self, data):
        speaker = connected_speaker()
        speaker.receive_bytes(S1, data)
        # Either still up (bytes were a valid prefix of a message or a
        # whole valid message) or torn down cleanly.
        assert speaker.peers[S1].fsm.state in State

    @settings(max_examples=150, deadline=None)
    @given(st.binary(min_size=19, max_size=100).map(lambda b: b"\xff" * 16 + b[16:]))
    def test_marker_prefixed_garbage_never_crashes(self, data):
        speaker = connected_speaker()
        speaker.receive_bytes(S1, data)
        assert speaker.peers[S1].fsm.state in State


class TestMutatedValidMessages:
    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_single_byte_mutations_never_crash(self, data):
        wire = bytearray(valid_update())
        index = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        value = data.draw(st.integers(min_value=0, max_value=255))
        wire[index] = value
        speaker = connected_speaker()
        speaker.receive_bytes(S1, bytes(wire))
        state = speaker.peers[S1].fsm.state
        assert state in (State.ESTABLISHED, State.IDLE)
        if state is State.ESTABLISHED:
            # If the session survived, the speaker's RIBs are coherent:
            # Loc-RIB only holds prefixes present in the Adj-RIB-In.
            adj = set(speaker.peers[S1].adj_rib_in.prefixes())
            for route in speaker.loc_rib.routes():
                assert route.prefix in adj

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=1, max_value=100))
    def test_truncations_never_crash(self, cut):
        wire = valid_update()
        speaker = connected_speaker()
        speaker.receive_bytes(S1, wire[: max(0, len(wire) - cut)])
        # A truncated message just waits in the framer (or killed the
        # session if the header itself was malformed).
        assert speaker.peers[S1].fsm.state in State

    @settings(max_examples=150, deadline=None)
    @given(st.data())
    def test_mutations_decode_identically_to_legacy(self, data):
        """The zero-copy decoder and the frozen legacy decoder must
        agree on corrupt input too: same messages or the same
        NOTIFICATION (code, subcode, data) — the speaker's teardown
        behaviour is a function of that taxonomy."""
        from repro.bgp import legacy_codec
        from repro.bgp.errors import BgpError
        from repro.bgp.messages import decode_message

        wire = bytearray(valid_update())
        index = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        wire[index] = data.draw(st.integers(min_value=0, max_value=255))
        wire = bytes(wire)

        def outcome(decoder):
            try:
                return ("ok", decoder(wire))
            except BgpError as error:
                n = error.notification
                return ("error", n.code, n.subcode, bytes(n.data))

        assert outcome(decode_message) == outcome(legacy_codec.legacy_decode_message)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=1, max_value=60))
    def test_arbitrary_resegmentation_is_lossless(self, cut1, cut2):
        """Any split of the byte stream into segments must decode to
        the same result as one contiguous delivery."""
        wire = valid_update() + KeepaliveMessage().encode() + valid_update()
        a = connected_speaker()
        a.receive_bytes(S1, wire)
        b = connected_speaker()
        first = min(cut1, len(wire))
        second = min(first + cut2, len(wire))
        b.receive_bytes(S1, wire[:first])
        b.receive_bytes(S1, wire[first:second])
        b.receive_bytes(S1, wire[second:])
        assert set(a.loc_rib.prefixes()) == set(b.loc_rib.prefixes())
        assert a.work.prefixes_announced == b.work.prefixes_announced
