"""Tests for the live AS-graph network: wiring, harness, sanitizer."""

import pytest

from repro.bgp.speaker import BgpSpeaker, PeerConfig, SpeakerConfig
from repro.net.addr import IPv4Address
from repro.topo.network import (
    TopologyHarness,
    TopologySanitizer,
    as_address,
    origin_prefix,
    peer_name,
)
from repro.topo.wiring import WiringError, establish_session, handshake_pair
from repro.workload.astopo import AsTopology, Relationship, valley_free_paths


def speaker(asn):
    address = as_address(asn)
    return BgpSpeaker(
        SpeakerConfig(
            asn=asn, bgp_identifier=address, local_address=address, hold_time=0.0
        )
    )


def small_topology():
    return AsTopology.hierarchy(tier1=2, tier2=4, stubs=10, seed=42)


def converge(harness, origin):
    node = harness.nodes[origin]
    harness.sim.schedule(0.0, lambda: node.originate(origin_prefix(origin)))
    harness.run()


class TestWiring:
    def test_handshake_pair_establishes_both_sides(self):
        a, b = speaker(65001), speaker(65002)
        a.add_peer(PeerConfig("toB", 65002, as_address(65002)))
        b.add_peer(PeerConfig("toA", 65001, as_address(65001)))
        handshake_pair(a, "toB", b, "toA")
        assert a.peers["toB"].established
        assert b.peers["toA"].established

    def test_wrong_asn_raises_wiring_error(self):
        a = speaker(65001)
        a.add_peer(PeerConfig("toB", 65002, as_address(65002)))
        with pytest.raises(WiringError):
            # Synthesized OPEN carries an ASN the config does not expect.
            establish_session(a, "toB", 64999, IPv4Address.parse("10.9.9.9"))


class TestTopologyHarness:
    def test_every_session_established(self):
        harness = TopologyHarness(small_topology(), seed=42)
        for node in harness.nodes.values():
            for peer in node.speaker.peers.values():
                assert peer.established

    def test_origin_reaches_every_as(self):
        topology = small_topology()
        harness = TopologyHarness(topology, seed=42)
        origin = topology.ases()[-1]
        converge(harness, origin)
        prefix = origin_prefix(origin)
        for asn, node in harness.nodes.items():
            if asn == origin:
                continue
            assert node.best_path(prefix) is not None, f"AS {asn} unreachable"
            assert node.best_path(prefix)[-1] == origin

    def test_live_paths_are_valley_free(self):
        """The tentpole invariant: compiled policies make valley-free
        propagation emerge from real policy evaluation."""
        topology = small_topology()
        harness = TopologyHarness(topology, seed=42)
        for origin in (topology.ases()[0], topology.ases()[-1]):
            prefix = origin_prefix(origin)
            node = harness.nodes[origin]
            harness.sim.schedule(0.0, lambda n=node, p=prefix: n.originate(p))
        harness.run()
        for origin in (topology.ases()[0], topology.ases()[-1]):
            prefix = origin_prefix(origin)
            for asn, node in harness.nodes.items():
                path = node.best_path(prefix)
                if path is None or asn == origin:
                    continue
                # Propagation order: origin ... viewer.
                traversal = tuple(reversed((asn,) + path))
                assert_valley_free(topology, traversal)

    def test_live_reachability_matches_abstract_propagation(self):
        topology = small_topology()
        harness = TopologyHarness(topology, seed=42)
        origin = topology.ases()[-1]
        converge(harness, origin)
        predicted = valley_free_paths(topology, origin)
        prefix = origin_prefix(origin)
        live = {
            asn
            for asn, node in harness.nodes.items()
            if node.best_path(prefix) is not None
        }
        assert live == set(predicted)

    def test_withdraw_leaves_no_routes_and_counts_ghosts(self):
        topology = small_topology()
        harness = TopologyHarness(topology, seed=42)
        origin = topology.ases()[-1]
        converge(harness, origin)
        prefix = origin_prefix(origin)
        harness.start_watch([prefix])
        node = harness.nodes[origin]
        harness.sim.schedule(0.0, lambda: node.withdraw(prefix))
        harness.run()
        assert harness.total_routes() == 0
        # Path exploration: at least one AS adopted a transient path.
        assert sum(n.ghost_paths for n in harness.nodes.values()) > 0

    def test_link_delays_seeded_and_deterministic(self):
        topology = small_topology()
        h1 = TopologyHarness(topology, seed=1)
        h2 = TopologyHarness(small_topology(), seed=1)
        h3 = TopologyHarness(small_topology(), seed=2)
        delays1 = [link.delay for link in h1.links.values()]
        delays2 = [link.delay for link in h2.links.values()]
        delays3 = [link.delay for link in h3.links.values()]
        assert delays1 == delays2
        assert delays1 != delays3

    def test_mrai_withholds_then_releases(self):
        topology = small_topology()
        harness = TopologyHarness(topology, seed=42, mrai_interval=30.0)
        origin = topology.ases()[-1]
        converge(harness, origin)
        prefix = origin_prefix(origin)
        harness.start_watch([prefix])
        node = harness.nodes[origin]
        harness.sim.schedule(0.0, lambda: node.withdraw(prefix))
        harness.run()
        # The withdraw storm forces re-advertisements inside the MRAI
        # interval; the gates must defer some, and the run must still
        # quiesce (release events drain the pending state).
        assert sum(n.mrai_deferrals for n in harness.nodes.values()) > 0
        assert harness.quiescent()
        assert harness.total_routes() == 0

    def test_measured_node_runs_costed_router(self):
        topology = small_topology()
        measured_asn = topology.ases()[0]
        harness = TopologyHarness(topology, seed=42, measured={measured_asn})
        node = harness.nodes[measured_asn]
        assert node.measured
        origin = topology.ases()[-1]
        converge(harness, origin)
        assert node.best_path(origin_prefix(origin)) is not None
        # The costed router installed the route in its FIB.
        assert sorted(node.router.fib.routes()) == node.speaker.loc_rib.fib_view()

    def test_unknown_measured_as_rejected(self):
        with pytest.raises(ValueError, match="not in topology"):
            TopologyHarness(small_topology(), measured={9999})

    def test_metrics_published_with_as_labels(self):
        from repro.telemetry.metrics import MetricRegistry

        topology = small_topology()
        harness = TopologyHarness(topology, seed=42)
        origin = topology.ases()[-1]
        converge(harness, origin)
        registry = MetricRegistry(clock=lambda: harness.sim.now)
        harness.publish_metrics(registry)
        state = registry.state()
        sent = state["topo_updates_sent_total"]
        labelled = {child["labels"]["asn"] for child in sent["children"]}
        assert labelled == {str(asn) for asn in topology.ases()}
        assert "topo_link_packets_total" in state
        assert "topo_mrai_deferrals_total" in state
        assert "topo_ghost_paths_total" in state


class TestTopologySanitizer:
    def test_clean_run_passes(self):
        topology = small_topology()
        harness = TopologyHarness(topology, seed=42)
        sanitizer = TopologySanitizer(harness)
        converge(harness, topology.ases()[-1])
        sanitizer.check_quiescent()
        assert sanitizer.stats.events_checked > 0
        assert sanitizer.stats.quiescent_checks == 1

    def test_detects_injected_imbalance(self):
        from repro.analysis.sanitizer import SanitizerError

        topology = small_topology()
        harness = TopologyHarness(topology, seed=42)
        sanitizer = TopologySanitizer(harness)
        victim = harness.nodes[topology.ases()[3]]
        victim.speaker.audit.announced += 7  # corrupt the ledger
        with pytest.raises(SanitizerError, match="prefix-conservation"):
            converge(harness, topology.ases()[-1])


def assert_valley_free(topology, traversal):
    """*traversal* is the propagation order origin ... viewer; after the
    path turns downhill (or crosses a peer link) it must never climb."""
    descending = False
    for current, nxt in zip(traversal, traversal[1:]):
        relationship = topology.relationship(current, nxt)
        assert relationship is not None, f"no link {current}-{nxt}"
        if relationship is Relationship.PROVIDER:
            assert not descending, f"valley in {traversal}"
        else:  # crossed a peer link or went down to a customer
            descending = True
