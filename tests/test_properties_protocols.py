"""Property-based tests for the protocol state machines: the BGP FSM
never crashes or reaches an inconsistent state under arbitrary event
sequences, and RIP converges to true shortest hop counts."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.fsm import Event, SessionFsm, State
from repro.bgp.messages import (
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.igp.rip import INFINITY_METRIC, RipNetwork
from repro.igp.topology import Topology
from repro.net.addr import IPv4Address


class NullActions:
    """Accepts all FSM side effects; records session transitions."""

    def __init__(self):
        self.ups = 0
        self.downs = 0
        self.sent = 0

    def send(self, message):
        self.sent += 1

    def start_connect(self):
        pass

    def drop_connection(self):
        pass

    def deliver_update(self, update):
        pass

    def session_up(self):
        self.ups += 1

    def session_down(self, reason):
        self.downs += 1


_STIMULI = st.sampled_from([
    ("event", Event.MANUAL_START),
    ("event", Event.MANUAL_STOP),
    ("event", Event.TCP_CONNECTED),
    ("event", Event.TCP_FAILED),
    ("event", Event.CONNECT_RETRY_EXPIRES),
    ("event", Event.HOLD_TIMER_EXPIRES),
    ("event", Event.KEEPALIVE_TIMER_EXPIRES),
    ("message", OpenMessage(65001, 90, IPv4Address.parse("2.2.2.2"))),
    ("message", KeepaliveMessage()),
    ("message", UpdateMessage()),
    ("message", NotificationMessage(6, 2)),
    ("tick", 10.0),
    ("tick", 100.0),
])


class TestFsmRobustness:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_STIMULI, max_size=40))
    def test_arbitrary_stimuli_never_crash(self, stimuli):
        actions = NullActions()
        fsm = SessionFsm(65000, IPv4Address.parse("1.1.1.1"), actions)
        now = 0.0
        for kind, payload in stimuli:
            if kind == "event":
                fsm.handle(payload, now=now)
            elif kind == "message":
                fsm.handle_message(payload, now=now)
            else:
                now += payload
                fsm.tick(now)
            # Invariants after every stimulus:
            assert fsm.state in State
            assert actions.downs <= actions.ups  # every down had an up

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_STIMULI, max_size=30))
    def test_established_only_after_full_handshake(self, stimuli):
        """ESTABLISHED is reachable only through OPEN + KEEPALIVE."""
        actions = NullActions()
        fsm = SessionFsm(65000, IPv4Address.parse("1.1.1.1"), actions)
        saw_open = False
        for kind, payload in stimuli:
            if kind == "message" and isinstance(payload, OpenMessage):
                saw_open = True
            if kind == "event":
                fsm.handle(payload)
            elif kind == "message":
                fsm.handle_message(payload)
            if fsm.state is State.ESTABLISHED:
                assert saw_open


def random_connected_topology(draw_edges, n):
    topology = Topology.line(n)  # spanning backbone keeps it connected
    for a, b in draw_edges:
        a, b = a % n, b % n
        if a != b:
            topology.add_link(f"r{a}", f"r{b}", 1.0)
    return topology


class TestRipCorrectness:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=7),
                      st.integers(min_value=0, max_value=7)),
            max_size=8,
        ),
    )
    def test_converged_metrics_are_shortest_hop_counts(self, n, extra_edges):
        topology = random_connected_topology(
            [(a, b) for a, b in extra_edges], n
        )
        network = RipNetwork(topology)
        network.converge()

        graph = nx.Graph()
        for a, b, _cost in topology.links():
            graph.add_edge(a, b)
        reference = dict(nx.all_pairs_shortest_path_length(graph))
        for source, router in network.routers.items():
            for destination in topology.routers():
                if destination == source:
                    continue
                expected = reference[source].get(destination)
                entry = router.route_to(destination)
                if expected is None or expected >= INFINITY_METRIC:
                    assert entry is None
                else:
                    assert entry is not None, (source, destination)
                    assert entry.metric == expected

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=3, max_value=8))
    def test_next_hops_form_no_loops(self, n):
        network = RipNetwork(Topology.ring(n))
        network.converge()
        for source in network.routers:
            for destination in network.routers:
                if source == destination:
                    continue
                current, hops = source, 0
                while current != destination:
                    entry = network.routers[current].route_to(destination)
                    assert entry is not None
                    current = entry.next_hop
                    hops += 1
                    assert hops <= n, "forwarding loop"
