"""Unit tests for BGP path attributes and their codec."""

import pytest

from repro.bgp.attributes import (
    Aggregator,
    AsPath,
    AsPathSegment,
    AttrFlag,
    AttrType,
    Origin,
    PathAttributes,
    SegmentType,
    decode_attributes,
    encode_attributes,
)
from repro.bgp.errors import BgpError
from repro.net.addr import IPv4Address

NH = IPv4Address.parse("10.0.0.1")


class TestAsPath:
    def test_from_asns(self):
        path = AsPath.from_asns([65001, 65002, 65003])
        assert path.length() == 3
        assert path.first_as() == 65001
        assert path.origin_as() == 65003

    def test_empty_path(self):
        path = AsPath()
        assert path.length() == 0
        assert path.first_as() is None
        assert path.origin_as() is None

    def test_as_set_counts_one(self):
        path = AsPath((
            AsPathSegment(SegmentType.AS_SEQUENCE, (65001, 65002)),
            AsPathSegment(SegmentType.AS_SET, (65003, 65004, 65005)),
        ))
        assert path.length() == 3  # 2 + 1 for the whole set

    def test_contains_for_loop_detection(self):
        path = AsPath((
            AsPathSegment(SegmentType.AS_SEQUENCE, (65001,)),
            AsPathSegment(SegmentType.AS_SET, (65002, 65003)),
        ))
        assert path.contains(65001)
        assert path.contains(65003)
        assert not path.contains(65099)

    def test_prepend_merges_into_leading_sequence(self):
        path = AsPath.from_asns([65002]).prepend(65001)
        assert path.segments == (
            AsPathSegment(SegmentType.AS_SEQUENCE, (65001, 65002)),
        )

    def test_prepend_count(self):
        path = AsPath.from_asns([65002]).prepend(65001, count=3)
        assert path.all_asns() == (65001, 65001, 65001, 65002)

    def test_prepend_onto_empty(self):
        path = AsPath().prepend(65001)
        assert path.length() == 1

    def test_prepend_before_as_set_creates_new_segment(self):
        path = AsPath((AsPathSegment(SegmentType.AS_SET, (65002,)),)).prepend(65001)
        assert len(path.segments) == 2
        assert path.segments[0].kind is SegmentType.AS_SEQUENCE

    def test_prepend_rejects_bad_count(self):
        with pytest.raises(ValueError):
            AsPath().prepend(65001, count=0)

    def test_codec_round_trip(self):
        path = AsPath((
            AsPathSegment(SegmentType.AS_SEQUENCE, (1, 2, 3)),
            AsPathSegment(SegmentType.AS_SET, (7, 9)),
        ))
        assert AsPath.decode(path.encode()) == path

    def test_decode_rejects_truncated(self):
        with pytest.raises(BgpError):
            AsPath.decode(b"\x02")  # header cut short
        with pytest.raises(BgpError):
            AsPath.decode(b"\x02\x02\x00\x01")  # body cut short

    def test_decode_rejects_bad_segment_type(self):
        with pytest.raises(BgpError):
            AsPath.decode(b"\x05\x01\x00\x01")

    def test_decode_rejects_empty_segment(self):
        with pytest.raises(BgpError):
            AsPath.decode(b"\x02\x00")

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            AsPathSegment(SegmentType.AS_SEQUENCE, ())
        with pytest.raises(ValueError):
            AsPathSegment(SegmentType.AS_SEQUENCE, (0,))
        with pytest.raises(ValueError):
            AsPathSegment(SegmentType.AS_SEQUENCE, (70000,))

    def test_str(self):
        path = AsPath((
            AsPathSegment(SegmentType.AS_SEQUENCE, (1, 2)),
            AsPathSegment(SegmentType.AS_SET, (3, 4)),
        ))
        assert str(path) == "1 2 {3 4}"


class TestPathAttributesDefaults:
    def test_effective_local_pref_default(self):
        assert PathAttributes().effective_local_pref() == 100
        assert PathAttributes(local_pref=50).effective_local_pref() == 50

    def test_effective_med_default(self):
        assert PathAttributes().effective_med() == 0
        assert PathAttributes(med=10).effective_med() == 10

    def test_with_prepended_as(self):
        attrs = PathAttributes(as_path=AsPath.from_asns([2]))
        assert attrs.with_prepended_as(1).as_path.all_asns() == (1, 2)

    def test_with_next_hop(self):
        attrs = PathAttributes().with_next_hop(NH)
        assert attrs.next_hop == NH


class TestAttributeCodec:
    def round_trip(self, attrs: PathAttributes) -> PathAttributes:
        return decode_attributes(encode_attributes(attrs))

    def test_minimal(self):
        attrs = PathAttributes(as_path=AsPath.from_asns([65001]), next_hop=NH)
        assert self.round_trip(attrs) == attrs

    def test_full(self):
        attrs = PathAttributes(
            origin=Origin.EGP,
            as_path=AsPath.from_asns([65001, 65002]),
            next_hop=NH,
            med=77,
            local_pref=200,
            atomic_aggregate=True,
            aggregator=Aggregator(65001, IPv4Address.parse("1.1.1.1")),
            communities=(0xFFFF0001, 65001 << 16 | 40),
        )
        assert self.round_trip(attrs) == attrs

    def test_missing_mandatory_rejected(self):
        # ORIGIN only: AS_PATH and NEXT_HOP absent.
        wire = bytes((AttrFlag.TRANSITIVE, AttrType.ORIGIN, 1, 0))
        with pytest.raises(BgpError):
            decode_attributes(wire)

    def test_mandatory_not_required_for_withdraw_only(self):
        attrs = decode_attributes(b"", require_mandatory=False)
        assert attrs.next_hop is None

    def test_duplicate_attribute_rejected(self):
        wire = bytes((AttrFlag.TRANSITIVE, AttrType.ORIGIN, 1, 0)) * 2
        with pytest.raises(BgpError):
            decode_attributes(wire, require_mandatory=False)

    def test_bad_origin_value(self):
        wire = bytes((AttrFlag.TRANSITIVE, AttrType.ORIGIN, 1, 9))
        with pytest.raises(BgpError):
            decode_attributes(wire, require_mandatory=False)

    def test_bad_origin_length(self):
        wire = bytes((AttrFlag.TRANSITIVE, AttrType.ORIGIN, 2, 0, 0))
        with pytest.raises(BgpError):
            decode_attributes(wire, require_mandatory=False)

    def test_invalid_next_hop(self):
        wire = bytes((AttrFlag.TRANSITIVE, AttrType.NEXT_HOP, 4)) + b"\x00" * 4
        with pytest.raises(BgpError):
            decode_attributes(wire, require_mandatory=False)

    def test_well_known_flagged_optional_rejected(self):
        wire = bytes((AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE, AttrType.ORIGIN, 1, 0))
        with pytest.raises(BgpError):
            decode_attributes(wire, require_mandatory=False)

    def test_unknown_well_known_rejected(self):
        wire = bytes((AttrFlag.TRANSITIVE, 99, 1, 0))
        with pytest.raises(BgpError):
            decode_attributes(wire, require_mandatory=False)

    def test_unknown_optional_transitive_carried_with_partial(self):
        wire = bytes((AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE, 99, 2, 0xAB, 0xCD))
        attrs = decode_attributes(wire, require_mandatory=False)
        assert len(attrs.unknown) == 1
        unknown = attrs.unknown[0]
        assert unknown.type_code == 99
        assert unknown.value == b"\xab\xcd"
        assert unknown.flags & AttrFlag.PARTIAL

    def test_unknown_optional_nontransitive_dropped(self):
        wire = bytes((AttrFlag.OPTIONAL, 99, 1, 0))
        attrs = decode_attributes(wire, require_mandatory=False)
        assert attrs.unknown == ()

    def test_extended_length_encoding(self):
        # A long AS path (130 ASNs = 262 bytes) forces extended length.
        attrs = PathAttributes(
            as_path=AsPath((
                AsPathSegment(SegmentType.AS_SEQUENCE, tuple(range(1, 131))),
            )),
            next_hop=NH,
        )
        assert self.round_trip(attrs) == attrs

    def test_truncated_attribute_header(self):
        with pytest.raises(BgpError):
            decode_attributes(b"\x40", require_mandatory=False)

    def test_attribute_overrun(self):
        wire = bytes((AttrFlag.TRANSITIVE, AttrType.ORIGIN, 5, 0))
        with pytest.raises(BgpError):
            decode_attributes(wire, require_mandatory=False)

    def test_communities_bad_length(self):
        wire = bytes((AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE, AttrType.COMMUNITIES, 3, 0, 0, 0))
        with pytest.raises(BgpError):
            decode_attributes(wire, require_mandatory=False)

    def test_aggregator_bad_length(self):
        wire = bytes((AttrFlag.OPTIONAL | AttrFlag.TRANSITIVE, AttrType.AGGREGATOR, 2, 0, 0))
        with pytest.raises(BgpError):
            decode_attributes(wire, require_mandatory=False)
