"""Unit tests for IPv4 addresses and CIDR prefixes."""

import pytest

from repro.net.addr import AddressError, IPv4Address, Prefix, iter_subnets


class TestIPv4Address:
    def test_parse_and_str_round_trip(self):
        for text in ("0.0.0.0", "10.0.0.1", "192.0.2.255", "255.255.255.255"):
            assert str(IPv4Address.parse(text)) == text

    def test_parse_value(self):
        assert IPv4Address.parse("10.0.0.1").value == 0x0A000001

    def test_parse_rejects_bad_octet_count(self):
        with pytest.raises(AddressError):
            IPv4Address.parse("10.0.1")
        with pytest.raises(AddressError):
            IPv4Address.parse("10.0.0.1.2")

    def test_parse_rejects_out_of_range_octet(self):
        with pytest.raises(AddressError):
            IPv4Address.parse("10.0.0.256")

    def test_parse_rejects_leading_zero(self):
        with pytest.raises(AddressError):
            IPv4Address.parse("10.0.0.01")

    def test_parse_rejects_non_numeric(self):
        with pytest.raises(AddressError):
            IPv4Address.parse("10.0.0.x")
        with pytest.raises(AddressError):
            IPv4Address.parse("10.0.0.-1")

    def test_value_range_check(self):
        with pytest.raises(AddressError):
            IPv4Address(-1)
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)

    def test_bytes_round_trip(self):
        addr = IPv4Address.parse("198.51.100.7")
        assert IPv4Address.from_bytes(addr.to_bytes()) == addr

    def test_from_bytes_requires_four(self):
        with pytest.raises(AddressError):
            IPv4Address.from_bytes(b"\x01\x02\x03")

    def test_ordering(self):
        low = IPv4Address.parse("10.0.0.1")
        high = IPv4Address.parse("10.0.0.2")
        assert low < high
        assert high > low
        assert low <= IPv4Address.parse("10.0.0.1")

    def test_int_conversion(self):
        assert int(IPv4Address.parse("0.0.0.1")) == 1

    def test_hashable(self):
        a = IPv4Address.parse("1.2.3.4")
        b = IPv4Address.parse("1.2.3.4")
        assert len({a, b}) == 1


class TestPrefix:
    def test_parse_and_str_round_trip(self):
        for text in ("0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "192.0.2.1/32"):
            assert str(Prefix.parse(text)) == text

    def test_parse_rejects_missing_slash(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0")

    def test_parse_rejects_bad_length(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/33")
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/x")

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.1/24")

    def test_from_address_masks_host_bits(self):
        prefix = Prefix.from_address(IPv4Address.parse("10.1.2.3"), 16)
        assert str(prefix) == "10.1.0.0/16"

    def test_contains(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.contains(IPv4Address.parse("192.0.2.1"))
        assert prefix.contains(IPv4Address.parse("192.0.2.255"))
        assert not prefix.contains(IPv4Address.parse("192.0.3.0"))

    def test_default_route_contains_everything(self):
        default = Prefix.parse("0.0.0.0/0")
        assert default.contains(IPv4Address.parse("255.255.255.255"))
        assert default.contains(0)

    def test_covers(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.covers(inner)
        assert not inner.covers(outer)
        assert outer.covers(outer)

    def test_covers_disjoint(self):
        assert not Prefix.parse("10.0.0.0/8").covers(Prefix.parse("11.0.0.0/8"))

    def test_first_last_address(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert str(prefix.first_address()) == "192.0.2.0"
        assert str(prefix.last_address()) == "192.0.2.255"

    def test_host_route_first_last(self):
        prefix = Prefix.parse("192.0.2.7/32")
        assert prefix.first_address() == prefix.last_address()

    def test_bits(self):
        assert Prefix.parse("128.0.0.0/1").bits() == "1"
        assert Prefix.parse("192.0.0.0/2").bits() == "11"
        assert Prefix.parse("0.0.0.0/0").bits() == ""
        assert Prefix.parse("10.0.0.0/8").bits() == "00001010"

    def test_mask(self):
        assert Prefix.parse("0.0.0.0/0").mask == 0
        assert Prefix.parse("192.0.2.0/24").mask == 0xFFFFFF00
        assert Prefix.parse("192.0.2.1/32").mask == 0xFFFFFFFF

    def test_ordering(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a < b < c

    def test_repr_is_eval_friendly(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert eval(repr(prefix)) == prefix

    def test_hashable_key(self):
        table = {Prefix.parse("10.0.0.0/8"): "a"}
        assert table[Prefix.parse("10.0.0.0/8")] == "a"


class TestIterSubnets:
    def test_split_into_two(self):
        subnets = list(iter_subnets(Prefix.parse("10.0.0.0/24"), 25))
        assert [str(p) for p in subnets] == ["10.0.0.0/25", "10.0.0.128/25"]

    def test_same_length_yields_self(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert list(iter_subnets(prefix, 24)) == [prefix]

    def test_rejects_shorter_target(self):
        with pytest.raises(AddressError):
            list(iter_subnets(Prefix.parse("10.0.0.0/24"), 23))

    def test_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            list(iter_subnets(Prefix.parse("10.0.0.0/24"), 33))

    def test_count(self):
        assert len(list(iter_subnets(Prefix.parse("10.0.0.0/24"), 28))) == 16
