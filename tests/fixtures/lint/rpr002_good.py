"""RPR002 fixture: a seeded Random instance is threaded through."""

import random


def shuffle_table(entries: list, rng: random.Random) -> list:
    rng.shuffle(entries)
    return entries


def fresh_rng(seed: int) -> random.Random:
    return random.Random(seed)
