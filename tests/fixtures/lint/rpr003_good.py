"""RPR003 fixture: unordered containers are sorted before iteration."""


def schedule_all(prefixes: set, sim) -> None:
    for prefix in sorted(prefixes):
        sim.schedule(0.0, prefix)


def hash_peers(by_peer: dict, digest) -> None:
    for peer in sorted(by_peer):
        digest.update(by_peer[peer])
