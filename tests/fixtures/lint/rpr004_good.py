"""RPR004 fixture: defaults are None, constructed inside."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
