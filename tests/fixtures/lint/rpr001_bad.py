"""RPR001 fixture: wall-clock and ambient-entropy reads."""

import time
import uuid
from datetime import datetime


def timestamp() -> float:
    return time.time()


def run_id() -> str:
    return str(uuid.uuid4())


def started() -> str:
    return datetime.now().isoformat()
