"""RPR007 fixture: a library module writing to shared stdout."""


def summarise(values: list) -> float:
    total = float(len(values))
    print("summarised", total)
    return total
