"""RPR005 fixture: exactly-rounded mean via math.fsum."""

import math


def mean(samples: list) -> float:
    return math.fsum(samples) / len(samples)
