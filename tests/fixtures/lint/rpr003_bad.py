"""RPR003 fixture: set iteration feeding event scheduling."""


def schedule_all(prefixes: set, sim) -> None:
    for prefix in prefixes:
        sim.schedule(0.0, prefix)


def drain(sim) -> None:
    for peer in {"speaker1", "speaker2"}:
        sim.schedule(1.0, peer)


def flush_peers(by_peer: dict, sim) -> None:
    for routes in by_peer.values():
        sim.schedule(0.0, routes)
