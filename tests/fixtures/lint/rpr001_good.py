"""RPR001 fixture: time comes from the simulated clock."""


def timestamp(sim) -> float:
    return sim.now


def run_id(cell_spec: dict) -> str:
    return f"s{cell_spec['scenario']}-seed{cell_spec['seed']}"
