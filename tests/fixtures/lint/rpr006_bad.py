"""RPR006 fixture: boundary dataclass without to_jsonable."""

# repro: boundary

from dataclasses import dataclass


@dataclass
class Summary:
    transactions: int
    duration: float
