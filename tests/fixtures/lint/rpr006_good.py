"""RPR006 fixture: boundary dataclass with an explicit contract."""

# repro: boundary

from dataclasses import dataclass


@dataclass
class Summary:
    transactions: int
    duration: float

    def to_jsonable(self) -> dict:
        return {"transactions": self.transactions, "duration": self.duration}
