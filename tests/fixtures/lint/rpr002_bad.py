"""RPR002 fixture: module-level and unseeded PRNG draws."""

import random


def shuffle_table(entries: list) -> list:
    random.shuffle(entries)
    return entries


def jitter() -> float:
    return random.uniform(0.0, 1.0)


def fresh_rng():
    return random.Random()
