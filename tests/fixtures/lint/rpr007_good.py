"""RPR007 fixture: a CLI entry point owns stdout."""

# repro: cli — this module is a command-line entry point.


def main(values: list) -> float:
    total = float(len(values))
    print("summarised", total)
    return total
