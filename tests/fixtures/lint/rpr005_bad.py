"""RPR005 fixture: order-dependent float mean."""


def mean(samples: list) -> float:
    return sum(samples) / len(samples)
