"""RPR101 bad: wall-clock jitter laundered through a helper into the
event scheduler — the cross-function shape the per-module linter cannot
see (it would flag the source line, but not the sink two calls away)."""

import time


def jitter():
    return time.time() % 1.0


def arm(sim):
    delay = jitter()
    sim.schedule(delay, "tick")
