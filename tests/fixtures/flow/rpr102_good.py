"""RPR102 good: the cache lives inside the cell — every worker process
builds its own, so there is no cross-shard state to diverge."""


def run_cell(spec):
    cache = {}
    cache[spec] = spec
    return cache[spec]
