"""RPR103 bad: a module-level memo keyed on ``id(obj)`` — identity is
per-process and per-allocation, so two shards (or two runs) populate
different keys for equal values."""

_memo = {}


def lookup(obj):
    if id(obj) not in _memo:
        _memo[id(obj)] = obj
    return _memo[id(obj)]
