"""RPR102 bad (parallel engine): a module-global sequence counter on
the shard-worker path — ``_shard_main`` is a declared worker entry, the
mutation sits one call away, and per-process counters diverge across
shards, breaking the deterministic cross-shard injection order."""

_link_seq = {}


def next_seq(link):
    seq = _link_seq.get(link, 0)
    _link_seq[link] = seq + 1
    return seq


def _shard_main(conn, spec):
    return next_seq(spec)
