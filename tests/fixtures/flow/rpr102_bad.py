"""RPR102 bad: a module-level cache warmed on the worker path — the
entry point is declared by bare name (``run_cell``), the mutation sits
one call away, and per-process warmth diverges across shards."""

_cache = {}


def warm(key, value):
    _cache[key] = value
    return value


def run_cell(spec):
    return warm(spec, spec)
