"""RPR104 good: a module-level function as the Process target and plain
data down the Pipe — both pickle under any start method."""

import multiprocessing


def child_main(seed):
    return seed + 1


def launch(conn, seed):
    worker = multiprocessing.Process(target=child_main, args=(seed,))
    worker.start()
    conn.send({"seed": seed})
