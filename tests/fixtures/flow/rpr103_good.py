"""RPR103 good: the memo is keyed on content — equal inputs hit the
same entry in every process."""

_memo = {}


def expensive(key):
    return key * 2


def lookup(key):
    if key not in _memo:
        _memo[key] = expensive(key)
    return _memo[key]
