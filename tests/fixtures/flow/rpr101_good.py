"""RPR101 good: jitter derived from the cell's seed — same call shape
as the bad twin, but every value is a pure function of the spec."""


def jitter(seed):
    return (seed * 2654435761 % 1000) / 1000.0


def arm(sim, seed):
    delay = jitter(seed)
    sim.schedule(delay, "tick")
