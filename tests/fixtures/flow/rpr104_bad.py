"""RPR104 bad: a nested function as a Process target and a lambda down
a Pipe — both die with a PicklingError under the spawn start method."""

import multiprocessing


def launch(conn):
    def child():
        return 1

    worker = multiprocessing.Process(target=child)
    worker.start()
    conn.send(lambda result: result)
