"""RPR102 good (parallel engine): the sequence counter lives on the
shard runtime built inside the worker — every shard process owns its
own, so there is no cross-shard state to diverge."""


class Runtime:
    def __init__(self):
        self.link_seq = {}

    def next_seq(self, link):
        seq = self.link_seq.get(link, 0)
        self.link_seq[link] = seq + 1
        return seq


def _shard_main(conn, spec):
    runtime = Runtime()
    return runtime.next_seq(spec)
