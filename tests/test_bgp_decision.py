"""Unit tests for the decision process, one tie-break level at a time."""

from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.bgp.decision import Candidate, DecisionProcess, PeerInfo, preference_key
from repro.net.addr import IPv4Address

NH1 = IPv4Address.parse("10.0.1.1")
NH2 = IPv4Address.parse("10.0.2.1")


def peer(peer_id="p1", asn=65001, addr="10.0.1.1", bgp_id="1.1.1.1", ebgp=True):
    return PeerInfo(peer_id, asn, IPv4Address.parse(addr), IPv4Address.parse(bgp_id), ebgp)


def candidate(
    local_pref=None,
    path=(65001,),
    origin=Origin.IGP,
    med=None,
    next_hop=NH1,
    **peer_kwargs,
):
    attrs = PathAttributes(
        origin=origin,
        as_path=AsPath.from_asns(list(path)),
        next_hop=next_hop,
        med=med,
        local_pref=local_pref,
    )
    return Candidate(attrs, peer(**peer_kwargs))


class TestTieBreakLevels:
    def test_higher_local_pref_wins(self):
        a = candidate(local_pref=200, path=(1, 2, 3, 4))
        b = candidate(local_pref=100, path=(1,))
        assert DecisionProcess().select([a, b]) is a

    def test_missing_local_pref_defaults_to_100(self):
        a = candidate(local_pref=None)
        b = candidate(local_pref=150, path=(1, 2))
        assert DecisionProcess().select([a, b]) is b

    def test_shorter_as_path_wins(self):
        a = candidate(path=(1, 2))
        b = candidate(path=(1, 2, 3))
        assert DecisionProcess().select([a, b]) is a

    def test_origin_breaks_path_tie(self):
        a = candidate(path=(1, 2), origin=Origin.IGP)
        b = candidate(path=(3, 4), origin=Origin.EGP)
        c = candidate(path=(5, 6), origin=Origin.INCOMPLETE)
        assert DecisionProcess().select([c, b, a]) is a

    def test_med_compared_within_same_neighbor_as(self):
        # Same first AS: lower MED wins.
        a = candidate(path=(7, 2), med=10)
        b = candidate(path=(7, 3), med=5)
        assert DecisionProcess().select([a, b]) is b

    def test_med_ignored_across_different_neighbor_as(self):
        # Different first AS: MED must not decide; falls through to
        # eBGP/router-id, so construct a case where MED would invert it.
        a = candidate(path=(7, 2), med=100, bgp_id="1.1.1.1")
        b = candidate(path=(8, 3), med=1, bgp_id="2.2.2.2")
        assert DecisionProcess().select([a, b]) is a

    def test_compare_med_always_flag(self):
        a = candidate(path=(7, 2), med=100, bgp_id="1.1.1.1")
        b = candidate(path=(8, 3), med=1, bgp_id="2.2.2.2")
        assert DecisionProcess(compare_med_always=True).select([a, b]) is b

    def test_ebgp_preferred_over_ibgp(self):
        a = candidate(path=(1, 2), ebgp=False, bgp_id="1.1.1.1")
        b = candidate(path=(3, 4), ebgp=True, bgp_id="9.9.9.9")
        assert DecisionProcess().select([a, b]) is b

    def test_lowest_bgp_identifier_wins(self):
        a = candidate(path=(1, 2), bgp_id="2.2.2.2")
        b = candidate(path=(3, 4), bgp_id="1.1.1.1")
        assert DecisionProcess().select([a, b]) is b

    def test_lowest_peer_address_final_tiebreak(self):
        a = candidate(path=(1, 2), bgp_id="1.1.1.1", addr="10.0.0.2", peer_id="a")
        b = candidate(path=(1, 3), bgp_id="1.1.1.1", addr="10.0.0.1", peer_id="b")
        assert DecisionProcess().select([a, b]) is b


class TestSelect:
    def test_empty_candidates(self):
        assert DecisionProcess().select([]) is None

    def test_single_candidate(self):
        a = candidate()
        assert DecisionProcess().select([a]) is a

    def test_unresolvable_next_hop_ineligible(self):
        attrs = PathAttributes(as_path=AsPath.from_asns([1]), next_hop=None)
        a = Candidate(attrs, peer())
        b = candidate(path=(1, 2, 3, 4, 5))
        assert DecisionProcess().select([a, b]) is b

    def test_all_unresolvable(self):
        attrs = PathAttributes(as_path=AsPath.from_asns([1]), next_hop=None)
        assert DecisionProcess().select([Candidate(attrs, peer())]) is None

    def test_comparison_counting(self):
        process = DecisionProcess()
        candidates = [candidate(path=(1, 2)), candidate(path=(1,)), candidate(path=(1, 2, 3))]
        process.select(candidates)
        assert process.comparisons == 2

    def test_selection_order_independent(self):
        a = candidate(path=(1,), bgp_id="1.1.1.1")
        b = candidate(path=(1, 2), bgp_id="2.2.2.2")
        c = candidate(path=(1, 2, 3), bgp_id="3.3.3.3")
        for ordering in ([a, b, c], [c, b, a], [b, a, c], [b, c, a]):
            assert DecisionProcess().select(list(ordering)) is a


class TestPreferenceKey:
    def test_key_is_total_order(self):
        candidates = [
            candidate(local_pref=lp, path=p, bgp_id=i)
            for lp, p, i in [
                (200, (1,), "1.1.1.1"),
                (100, (1,), "2.2.2.2"),
                (100, (1, 2), "3.3.3.3"),
                (None, (9,), "4.4.4.4"),
            ]
        ]
        keys = [preference_key(c) for c in candidates]
        assert sorted(keys) == sorted(keys, key=lambda k: k)  # comparable
        # Highest local-pref candidate must sort first.
        assert min(range(4), key=lambda i: keys[i]) == 0

    def test_med_nontransitivity_documented_behavior(self):
        # a beats b (same neighbor AS, lower MED), b beats c (shorter
        # path? no — same length; different neighbor AS so MED skipped,
        # falls to router id), and c can beat a: the classic MED cycle.
        process = DecisionProcess()
        a = candidate(path=(7, 1), med=5, bgp_id="3.3.3.3")
        b = candidate(path=(7, 2), med=10, bgp_id="1.1.1.1")
        c = candidate(path=(8, 3), med=0, bgp_id="2.2.2.2")
        assert process.prefer(a, b) is a        # MED: 5 < 10
        assert process.prefer(b, c) is b        # router id: 1.1.1.1 < 2.2.2.2
        assert process.prefer(c, a) is c        # router id: 2.2.2.2 < 3.3.3.3
