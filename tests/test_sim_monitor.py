"""Unit tests for CPU and rate monitors."""

import pytest

from repro.sim.cpu import Priority, World
from repro.sim.monitor import CpuMonitor, RateMonitor, _spread


class TestSpread:
    def test_within_one_bucket(self):
        assert list(_spread(0.2, 0.7, 1.0)) == [(0, pytest.approx(0.5))]

    def test_across_buckets(self):
        chunks = list(_spread(0.5, 2.5, 1.0))
        assert chunks == [
            (0, pytest.approx(0.5)),
            (1, pytest.approx(1.0)),
            (2, pytest.approx(0.5)),
        ]

    def test_exact_boundary(self):
        assert list(_spread(1.0, 2.0, 1.0)) == [(1, pytest.approx(1.0))]

    def test_empty_interval(self):
        assert list(_spread(1.0, 1.0, 1.0)) == []

    def test_custom_width(self):
        chunks = list(_spread(0.0, 1.0, 0.5))
        assert [bucket for bucket, _dt in chunks] == [0, 1]


class TestCpuMonitor:
    def test_full_load_is_100_percent(self):
        world = World()
        machine = world.new_machine("m", cores=1)
        monitor = CpuMonitor(machine)
        machine.new_task("t").submit(2.0)
        world.run()
        assert monitor.load_percent("t") == [(0.0, pytest.approx(100.0)),
                                             (1.0, pytest.approx(100.0))]

    def test_shared_load_is_50_percent(self):
        world = World()
        machine = world.new_machine("m", cores=1)
        monitor = CpuMonitor(machine)
        machine.new_task("a").submit(1.0)
        machine.new_task("b").submit(1.0)
        world.run()
        assert monitor.load_percent("a") == [(0.0, pytest.approx(50.0)),
                                             (1.0, pytest.approx(50.0))]

    def test_percent_normalised_by_machine_speed(self):
        world = World()
        machine = world.new_machine("slow", cores=1, speed=0.1)
        monitor = CpuMonitor(machine)
        machine.new_task("t").submit(0.1)  # takes 1 virtual second
        world.run()
        assert monitor.load_percent("t") == [(0.0, pytest.approx(100.0))]

    def test_total_cpu_seconds(self):
        world = World()
        machine = world.new_machine("m", cores=1)
        monitor = CpuMonitor(machine)
        machine.new_task("t").submit(1.5)
        world.run()
        assert monitor.total_cpu_seconds("t") == pytest.approx(1.5)

    def test_task_names_and_table(self):
        world = World()
        machine = world.new_machine("m", cores=1)
        monitor = CpuMonitor(machine)
        machine.new_task("a").submit(0.5)
        machine.new_task("b").submit(0.5)
        world.run()
        assert monitor.task_names() == ["a", "b"]
        assert set(monitor.table()) == {"a", "b"}

    def test_bucket_width_validation(self):
        world = World()
        machine = world.new_machine("m", cores=1)
        with pytest.raises(ValueError):
            CpuMonitor(machine, bucket_width=0.0)


class TestRateMonitor:
    def test_served_equals_offered_when_unloaded(self):
        world = World()
        machine = world.new_machine("m", cores=1)
        load = machine.new_task("fwd", Priority.KERNEL)
        monitor = RateMonitor(machine, load, scale=1000.0)
        load.set_continuous_demand(0.3)
        world.run(until=3.0)
        series = monitor.series()
        assert len(series) == 3
        for _t, served in series:
            assert served == pytest.approx(300.0)
        assert monitor.loss_fraction() == pytest.approx(0.0, abs=1e-9)

    def test_loss_under_overload(self):
        world = World()
        machine = world.new_machine("m", cores=1)
        load = machine.new_task("fwd", Priority.KERNEL, max_backlog=0.001)
        monitor = RateMonitor(machine, load, scale=1.0)
        load.set_continuous_demand(2.0)
        world.run(until=2.0)
        assert monitor.loss_fraction() == pytest.approx(0.5, abs=0.05)

    def test_only_monitored_task_recorded(self):
        world = World()
        machine = world.new_machine("m", cores=1)
        load = machine.new_task("fwd", Priority.KERNEL)
        other = machine.new_task("other")
        monitor = RateMonitor(machine, load, scale=1.0)
        other.submit(1.0)
        world.run()
        assert monitor.series() == []
