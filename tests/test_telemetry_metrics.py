"""The metric registry: instruments, labels, registration discipline.

These tests pin the semantics the exporters and the golden gate lean
on: registration is idempotent for identical signatures and loud for
conflicting ones, histogram bucket counts always sum to the observation
count, and ``state()`` is a canonical (sorted, JSON-ready) snapshot.
"""

import pytest

from repro.telemetry.metrics import DEFAULT_BUCKETS, MetricRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricRegistry()
        counter = reg.counter("repro_things_total", "things")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_labelled_children_are_independent(self):
        reg = MetricRegistry()
        counter = reg.counter("repro_pkts_total", "pkts", ("peer",))
        counter.inc(peer="p1")
        counter.inc(3, peer="p2")
        assert counter.value(peer="p1") == 1.0
        assert counter.value(peer="p2") == 3.0
        assert counter.value(peer="p3") == 0.0

    def test_negative_increment_rejected(self):
        reg = MetricRegistry()
        counter = reg.counter("repro_things_total", "things")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_missing_label_rejected(self):
        reg = MetricRegistry()
        counter = reg.counter("repro_pkts_total", "pkts", ("peer",))
        with pytest.raises(ValueError):
            counter.inc()


class TestGauge:
    def test_set_overwrites_and_keeps_series(self):
        times = iter([1.0, 2.0, 3.0])
        reg = MetricRegistry(clock=lambda: next(times))
        gauge = reg.gauge("repro_depth", "queue depth")
        gauge.set(4.0)
        gauge.set(7.0)
        assert gauge.value() == 7.0
        # The first clock tick stamps child creation; sets stamp the rest.
        assert gauge.series() == [(2.0, 4.0), (3.0, 7.0)]


class TestHistogram:
    def test_bucket_counts_sum_to_count(self):
        reg = MetricRegistry()
        hist = reg.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 3.0, 99.0):
            hist.observe(value)
        child = hist.labelled()
        assert sum(child["counts"]) == child["count"] == 5
        assert child["sum"] == pytest.approx(0.05 + 0.1 + 0.5 + 3.0 + 99.0)

    def test_edge_value_lands_in_its_bucket_not_the_next(self):
        reg = MetricRegistry()
        hist = reg.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0))
        hist.observe(0.1)
        assert hist.labelled()["counts"] == [1, 0, 0]

    def test_overflow_goes_to_last_slot(self):
        reg = MetricRegistry()
        hist = reg.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0))
        hist.observe(5.0)
        assert hist.labelled()["counts"] == [0, 0, 1]

    def test_bucket_edges_validated(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError):
            reg.histogram("repro_a_seconds", "a", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("repro_b_seconds", "b", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("repro_c_seconds", "c", buckets=(1.0, float("inf")))

    def test_default_buckets_are_fixed_and_increasing(self):
        assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))
        assert len(DEFAULT_BUCKETS) == len(set(DEFAULT_BUCKETS))


class TestRegistry:
    def test_reregistration_identical_signature_returns_same_instrument(self):
        reg = MetricRegistry()
        first = reg.counter("repro_x_total", "x", ("a",))
        second = reg.counter("repro_x_total", "x", ("a",))
        assert first is second

    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("repro_x_total", "x")
        with pytest.raises(ValueError):
            reg.gauge("repro_x_total", "x")

    def test_label_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("repro_x_total", "x", ("a",))
        with pytest.raises(ValueError):
            reg.counter("repro_x_total", "x", ("b",))

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricRegistry()
        reg.histogram("repro_h_seconds", "h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("repro_h_seconds", "h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name", "x")
        with pytest.raises(ValueError):
            reg.counter("repro_x_total", "x", ("bad label",))

    def test_collect_is_name_sorted(self):
        reg = MetricRegistry()
        reg.counter("repro_z_total", "z")
        reg.counter("repro_a_total", "a")
        assert [m.name for m in reg.collect()] == ["repro_a_total", "repro_z_total"]

    def test_contains_and_get(self):
        reg = MetricRegistry()
        counter = reg.counter("repro_x_total", "x")
        assert "repro_x_total" in reg
        assert reg.get("repro_x_total") is counter
        with pytest.raises(KeyError):
            reg.get("repro_missing_total")

    def test_state_snapshot_shape(self):
        times = iter([5.0, 6.0])
        reg = MetricRegistry(clock=lambda: next(times))
        counter = reg.counter("repro_x_total", "x", ("peer",))
        counter.inc(2, peer="p1")
        state = reg.state()
        family = state["repro_x_total"]
        assert family["kind"] == "counter"
        assert family["labels"] == ["peer"]
        assert family["children"] == [
            {"labels": {"peer": "p1"}, "time": 6.0, "value": 2.0}
        ]
