"""The perf-work acceptance gate: optimizations are invisible.

The trie-backed RIBs, interned attributes, and zero-copy codec are live
on every simulated run. This suite re-executes a sample of the
committed golden baselines — grid cells across all four platforms and
the full topology grid — from scratch and requires the canonical JSON
to match the blessed bytes exactly. Mirrors
``tests/test_telemetry_observe_only.py``: a performance layer, like an
observability layer, must not move a single digit of any result.
"""

import json
from pathlib import Path

import pytest

from repro.grid.baseline import trim_for_golden
from repro.grid.cells import GridCell, run_cell
from repro.topo.families import TopoCell

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "golden"

#: One fault-free grid cell per platform, plus the large-packet and
#: duplicate-announcement scenarios the hot paths serve most directly.
GRID_CELLS = [
    "s1-cisco-seed42-n150",
    "s1-ixp2400-seed42-n150",
    "s1-xeon-seed42-n150",
    "s4-pentium3-seed42-n150",
    "s5-pentium3-seed42-n150",
    "s8-pentium3-seed42-n150",
]


def load_golden(name: str) -> dict:
    return json.loads((GOLDEN_DIR / name).read_text())["cells"]


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


class TestGridByteIdentity:
    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden("grid-small.json")

    @pytest.mark.parametrize("cell_id", GRID_CELLS)
    def test_cell_matches_blessed_bytes(self, golden, cell_id):
        blessed = golden[cell_id]
        cell = GridCell.from_spec(blessed["cell"])
        # The golden pins the trimmed metric subset; the comparison here
        # is still exact — zero tolerance, every float digit — unlike
        # ``bgpbench regress`` which allows relative drift.
        assert canonical(trim_for_golden(run_cell(cell))) == canonical(blessed)


class TestTopoByteIdentity:
    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden("topo-small.json")

    def test_every_cell_matches_blessed_bytes(self, golden):
        for cell_id, blessed in sorted(golden.items()):
            cell = TopoCell.from_spec(blessed["cell"])
            assert canonical(trim_for_golden(run_cell(cell))) == canonical(
                blessed
            ), cell_id
