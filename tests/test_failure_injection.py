"""Failure injection: malformed input, session loss, and recovery while
the benchmark machinery is running."""

import pytest

from repro.benchmark.harness import SPEAKER1, SPEAKER1_ADDR, SPEAKER1_ASN, stream_packets
from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.fsm import State
from repro.bgp.messages import (
    HEADER_LEN,
    MARKER,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.bgp.policy import ACCEPT_ALL
from repro.bgp.speaker import PeerConfig
from repro.net.addr import IPv4Address, Prefix
from repro.systems import build_system
from repro.workload.tablegen import generate_table
from repro.workload.updates import UpdateStreamBuilder


def prepared_router(platform="pentium3"):
    router = build_system(platform)
    router.add_peer(
        PeerConfig(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR, ACCEPT_ALL, ACCEPT_ALL)
    )
    router.handshake(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR)
    return router


def corrupt_marker(packet: bytes) -> bytes:
    mutated = bytearray(packet)
    mutated[0] = 0x00
    return bytes(mutated)


def truncated_update() -> bytes:
    """A framed UPDATE whose withdrawn-length field overruns the body."""
    body = (999).to_bytes(2, "big") + b"\x00\x00"
    return MARKER + (HEADER_LEN + len(body)).to_bytes(2, "big") + b"\x02" + body


class TestMalformedInputMidStream:
    def test_bad_marker_tears_down_session(self):
        router = prepared_router()
        table = generate_table(50, seed=5)
        builder = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)
        packets = builder.announcements(table, 1)
        packets[25] = corrupt_marker(packets[25])
        stream_packets(router, SPEAKER1, packets, window=4)
        peer = router.speaker.peers[SPEAKER1]
        assert peer.fsm.state is State.IDLE
        # Session loss flushed every route learned so far.
        assert len(router.speaker.loc_rib) == 0
        assert len(router.fib) == 0

    def test_notification_sent_on_malformed_update(self):
        router = prepared_router()
        outbox = router.outboxes[SPEAKER1]
        sent_before = len(outbox)
        router.deliver(SPEAKER1, truncated_update())
        router.run_until_idle()
        new_messages = outbox[sent_before:]
        assert any(
            b and b[18] == 3  # NOTIFICATION type byte
            for b in new_messages
        )

    def test_bad_packet_does_not_crash_the_harness(self):
        router = prepared_router()
        router.deliver(SPEAKER1, b"\xde\xad\xbe\xef" * 8)
        router.run_until_idle()
        assert router.speaker.peers[SPEAKER1].fsm.state is State.IDLE

    def test_processing_continues_for_other_peer(self):
        """One peer's garbage must not disturb the other's session."""
        router = prepared_router()
        router.add_peer(
            PeerConfig("speaker2", 65102, IPv4Address.parse("10.255.2.1"),
                       ACCEPT_ALL, ACCEPT_ALL)
        )
        router.handshake("speaker2", 65102, IPv4Address.parse("10.255.2.1"))
        router.deliver(SPEAKER1, truncated_update())
        attrs = PathAttributes(
            as_path=AsPath.from_asns([65102, 300]),
            next_hop=IPv4Address.parse("10.255.2.1"),
        )
        good = UpdateMessage(attributes=attrs, nlri=(Prefix.parse("192.0.2.0/24"),))
        router.deliver("speaker2", good.encode())
        router.run_until_idle()
        assert router.speaker.peers[SPEAKER1].fsm.state is State.IDLE
        assert router.speaker.peers["speaker2"].established
        assert len(router.fib) == 1


class TestSessionLossAndRecovery:
    def test_notification_mid_benchmark_flushes_routes(self):
        router = prepared_router()
        table = generate_table(100, seed=6)
        builder = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)
        stream_packets(router, SPEAKER1, builder.announcements(table, 100), window=4)
        assert len(router.fib) == 100
        router.deliver(SPEAKER1, NotificationMessage(6, 4).encode())
        router.run_until_idle()
        assert len(router.fib) == 0
        assert len(router.speaker.peers[SPEAKER1].adj_rib_in) == 0

    def test_session_reestablishes_after_teardown(self):
        router = prepared_router()
        router.deliver(SPEAKER1, NotificationMessage(6, 4).encode())
        router.run_until_idle()
        assert router.speaker.peers[SPEAKER1].fsm.state is State.IDLE
        # Full re-handshake works on the same peer object.
        router.handshake(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR)
        assert router.speaker.peers[SPEAKER1].established

    def test_routes_relearned_after_flap(self):
        router = prepared_router()
        table = generate_table(40, seed=7)
        builder = UpdateStreamBuilder(SPEAKER1_ASN, SPEAKER1_ADDR)
        stream_packets(router, SPEAKER1, builder.announcements(table, 40), window=4)
        router.deliver(SPEAKER1, NotificationMessage(6, 4).encode())
        router.run_until_idle()
        assert len(router.fib) == 0
        router.handshake(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR)
        router.reset_counters()
        stream_packets(router, SPEAKER1, builder.announcements(table, 40), window=4)
        assert len(router.fib) == 40

    def test_framer_state_cleared_on_teardown(self):
        """A partial message left in the framer must not poison the
        re-established session."""
        router = prepared_router()
        attrs = PathAttributes(
            as_path=AsPath.from_asns([SPEAKER1_ASN]), next_hop=SPEAKER1_ADDR
        )
        update = UpdateMessage(attributes=attrs, nlri=(Prefix.parse("192.0.2.0/24"),))
        wire = update.encode()
        # Deliver only half a message, then kill the session via the FSM.
        router.speaker.receive_bytes(SPEAKER1, wire[: len(wire) // 2])
        assert router.speaker.peers[SPEAKER1].framer.pending_bytes > 0
        router.speaker.peers[SPEAKER1].fsm.handle_message(NotificationMessage(6, 4))
        assert router.speaker.peers[SPEAKER1].framer.pending_bytes == 0
        # Re-establish and deliver the full message: processed cleanly.
        router.handshake(SPEAKER1, SPEAKER1_ASN, SPEAKER1_ADDR)
        router.speaker.receive_bytes(SPEAKER1, wire)
        assert len(router.speaker.loc_rib) == 1


class TestHarnessGuards:
    def test_unknown_peer_delivery_raises(self):
        router = build_system("pentium3")
        router.deliver("ghost", b"data")
        with pytest.raises(KeyError):
            router.run_until_idle()

    def test_empty_packet_counts_but_does_nothing(self):
        router = prepared_router()
        router.deliver(SPEAKER1, b"")
        router.run_until_idle()
        assert router.speaker.peers[SPEAKER1].established
