"""Unit tests for the RIP model: convergence, split horizon, and the
classic count-to-infinity pathology."""

import pytest

from repro.igp.rip import INFINITY_METRIC, RipNetwork, RipRouter, converge
from repro.igp.topology import Topology


class TestRouter:
    def test_initial_table_self_route(self):
        router = RipRouter("a")
        assert router.table["a"].metric == 0

    def test_learns_route(self):
        router = RipRouter("a")
        changed = router.process_advertisement("b", 1, {"b": 0, "c": 1})
        assert changed
        assert router.route_to("b").metric == 1
        assert router.route_to("c").metric == 2
        assert router.route_to("c").next_hop == "b"

    def test_keeps_better_route(self):
        router = RipRouter("a")
        router.process_advertisement("b", 1, {"x": 1})
        router.process_advertisement("c", 1, {"x": 5})
        assert router.route_to("x").next_hop == "b"
        assert router.route_to("x").metric == 2

    def test_current_next_hop_authoritative_even_if_worse(self):
        router = RipRouter("a")
        router.process_advertisement("b", 1, {"x": 1})
        assert router.route_to("x").metric == 2
        router.process_advertisement("b", 1, {"x": 7})
        assert router.route_to("x").metric == 8

    def test_metric_capped_at_infinity(self):
        router = RipRouter("a")
        router.process_advertisement("b", 1, {"x": 15})
        # 15 + 1 caps at infinity: an unreachable new route is not
        # installed at all.
        assert router.route_to("x") is None
        assert "x" not in router.table

    def test_existing_route_poisoned_by_infinity(self):
        router = RipRouter("a")
        router.process_advertisement("b", 1, {"x": 1})
        router.process_advertisement("b", 1, {"x": INFINITY_METRIC})
        assert router.route_to("x") is None
        assert router.table["x"].metric == INFINITY_METRIC

    def test_split_horizon_omits_routes_via_neighbor(self):
        router = RipRouter("a", split_horizon=True, poisoned_reverse=False)
        router.process_advertisement("b", 1, {"x": 1})
        vector = router.advertisement_for("b")
        assert "x" not in vector
        assert vector["a"] == 0

    def test_poisoned_reverse_advertises_infinity(self):
        router = RipRouter("a", split_horizon=True, poisoned_reverse=True)
        router.process_advertisement("b", 1, {"x": 1})
        assert router.advertisement_for("b")["x"] == INFINITY_METRIC

    def test_no_split_horizon_advertises_back(self):
        router = RipRouter("a", split_horizon=False)
        router.process_advertisement("b", 1, {"x": 1})
        assert router.advertisement_for("b")["x"] == 2

    def test_expire_next_hop(self):
        router = RipRouter("a")
        router.process_advertisement("b", 1, {"b": 0, "x": 1, "y": 2})
        router.process_advertisement("c", 1, {"z": 1})
        assert router.expire_next_hop("b") == 3  # b itself, x, y
        assert router.route_to("x") is None
        assert router.route_to("z") is not None


class TestConvergence:
    def test_line_converges_to_hop_counts(self):
        network = converge(Topology.line(5))
        r0 = network.routers["r0"]
        assert r0.route_to("r4").metric == 4
        assert r0.route_to("r4").next_hop == "r1"
        assert r0.route_to("r1").metric == 1

    def test_ring_takes_shorter_arc(self):
        network = converge(Topology.ring(6))
        r0 = network.routers["r0"]
        assert r0.route_to("r1").metric == 1
        assert r0.route_to("r5").metric == 1  # around the back
        assert r0.route_to("r3").metric == 3

    def test_convergence_rounds_bounded_by_diameter(self):
        network = RipNetwork(Topology.line(8))
        rounds = network.converge()
        assert rounds <= 10  # diameter 7 + quiescence round

    def test_all_pairs_reachable_in_mesh(self):
        network = converge(Topology.full_mesh(5))
        for a in network.routers:
            for b in network.routers:
                if a != b:
                    assert network.routers[a].route_to(b).metric == 1

    def test_deterministic(self):
        t1 = converge(Topology.ring(5))
        t2 = converge(Topology.ring(5))
        for name in t1.routers:
            table1 = {d: (e.metric, e.next_hop) for d, e in t1.routers[name].table.items()}
            table2 = {d: (e.metric, e.next_hop) for d, e in t2.routers[name].table.items()}
            assert table1 == table2


class TestLinkFailure:
    def test_reroute_after_failure_with_split_horizon(self):
        network = converge(Topology.ring(5))
        network.fail_link("r0", "r1")
        network.converge()
        r0 = network.routers["r0"]
        assert r0.route_to("r1").metric == 4
        assert r0.route_to("r1").next_hop == "r4"

    def test_partition_leaves_destination_unreachable(self):
        network = converge(Topology.line(3))
        network.fail_link("r1", "r2")
        network.converge()
        assert network.routers["r0"].route_to("r2") is None

    def test_count_to_infinity_without_split_horizon(self):
        """The classic pathology: without split horizon, a partition
        makes two routers bounce the dead route between each other,
        climbing the metric one step per round until 16."""
        network = RipNetwork(
            Topology.line(3), split_horizon=False, poisoned_reverse=False
        )
        network.converge()
        network.fail_link("r1", "r2")
        rounds = network.converge(max_rounds=100)
        # Converged only by counting up to infinity — needs ~metric-many
        # rounds, far more than the diameter.
        assert rounds >= INFINITY_METRIC / 2
        assert network.routers["r0"].route_to("r2") is None

    def test_split_horizon_converges_fast_after_partition(self):
        network = RipNetwork(Topology.line(3))
        network.converge()
        network.fail_link("r1", "r2")
        rounds = network.converge(max_rounds=100)
        assert rounds <= 4
