"""GridCell specs: identity, canonical hashing, enumeration, execution."""

import json
import pickle

import pytest

from repro.benchmark import run_scenario
from repro.grid import GridCell, enumerate_grid, result_json, run_cell
from repro.systems import build_system


class TestCellIdentity:
    def test_cell_id_names_every_coordinate(self):
        cell = GridCell(scenario=3, platform="xeon", seed=9, table_size=250)
        assert cell.cell_id == "s3-xeon-seed9-n250"

    def test_spec_roundtrips(self):
        cell = GridCell(5, "cisco", 1, 100)
        assert GridCell.from_spec(cell.spec()) == cell
        assert GridCell.from_spec(json.loads(cell.spec_json())) == cell

    def test_spec_json_is_canonical(self):
        cell = GridCell(1, "pentium3", 42, 150)
        assert cell.spec_json() == json.dumps(
            cell.spec(), sort_keys=True, separators=(",", ":")
        )
        # No whitespace so the hashed bytes never depend on formatting.
        assert " " not in cell.spec_json()

    def test_cells_are_hashable_and_picklable(self):
        cell = GridCell(2, "ixp2400", 7, 80)
        assert len({cell, GridCell(2, "ixp2400", 7, 80)}) == 1
        assert pickle.loads(pickle.dumps(cell)) == cell

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scenario": 0},
            {"scenario": 9},
            {"platform": "sparc"},
            {"table_size": 0},
        ],
    )
    def test_invalid_coordinates_rejected(self, kwargs):
        spec = {"scenario": 1, "platform": "xeon", "seed": 42, "table_size": 100}
        spec.update(kwargs)
        with pytest.raises((ValueError, KeyError)):
            GridCell(**spec)


class TestCellKeys:
    def test_key_depends_on_spec(self):
        fingerprint = "f" * 64
        a = GridCell(1, "xeon", 42, 100).key(fingerprint)
        b = GridCell(1, "xeon", 43, 100).key(fingerprint)
        assert a != b

    def test_key_depends_on_fingerprint(self):
        cell = GridCell(1, "xeon", 42, 100)
        assert cell.key("aaa") != cell.key("bbb")

    def test_key_is_stable(self):
        cell = GridCell(1, "xeon", 42, 100)
        assert cell.key("abc") == cell.key("abc")
        assert len(cell.key("abc")) == 64


class TestEnumeration:
    def test_full_grid_size(self):
        cells = enumerate_grid(seeds=(1, 2), table_sizes=(100, 200))
        assert len(cells) == 8 * 4 * 2 * 2

    def test_order_is_deterministic_and_sorted(self):
        cells = enumerate_grid(
            scenarios=[2, 1], platforms=["xeon", "cisco"], seeds=[5, 3],
            table_sizes=[200, 100],
        )
        assert cells == sorted(cells)
        assert cells == enumerate_grid(
            scenarios=[1, 2], platforms=["cisco", "xeon"], seeds=[3, 5],
            table_sizes=[100, 200],
        )

    def test_duplicates_collapse(self):
        cells = enumerate_grid(
            scenarios=[1, 1], platforms=["xeon"], seeds=[3, 3], table_sizes=[100]
        )
        assert len(cells) == 1


class TestRunCell:
    def test_matches_direct_scenario_run(self):
        cell = GridCell(1, "pentium3", 11, 120)
        result = run_cell(cell)
        direct = run_scenario(
            build_system("pentium3"), 1, table_size=120, seed=11
        )
        assert result["transactions_per_second"] == direct.transactions_per_second
        assert result["transactions"] == direct.transactions
        assert result["fib_size_after"] == direct.fib_size_after
        assert result["cell"] == cell.spec()
        assert result["completed"] is True

    def test_result_is_json_ready(self):
        result = run_cell(GridCell(5, "pentium3", 2, 100))
        assert json.loads(json.dumps(result)) == result

    def test_result_json_is_canonical(self):
        results = {"b": {"x": 1}, "a": {"y": 2}}
        text = result_json(results)
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == results
