"""Unit tests for the compiled Gao-Rexford topology policies."""

from repro.bgp.attributes import AsPath, PathAttributes
from repro.net.addr import IPv4Address, Prefix
from repro.topo.policy import (
    LOCAL_PREF_CUSTOMER,
    LOCAL_PREF_PEER,
    LOCAL_PREF_PROVIDER,
    TAG_CUSTOMER,
    TAG_PEER,
    TAG_PROVIDER,
    export_policy,
    import_policy,
)
from repro.workload.astopo import Relationship

PREFIX = Prefix.parse("96.0.42.0/24")


def attrs(communities=()):
    return PathAttributes(
        as_path=AsPath.from_asns([65001]),
        next_hop=IPv4Address.parse("10.0.0.1"),
        communities=communities,
    )


class TestImportPolicy:
    def test_customer_routes_tagged_and_preferred(self):
        accepted = import_policy(Relationship.CUSTOMER).apply(PREFIX, attrs())
        assert accepted is not None
        assert accepted.local_pref == LOCAL_PREF_CUSTOMER
        assert accepted.communities == (TAG_CUSTOMER,)

    def test_preference_ladder(self):
        prefs = {
            relationship: import_policy(relationship).apply(PREFIX, attrs()).local_pref
            for relationship in Relationship
        }
        assert prefs[Relationship.CUSTOMER] == LOCAL_PREF_CUSTOMER
        assert prefs[Relationship.PEER] == LOCAL_PREF_PEER
        assert prefs[Relationship.PROVIDER] == LOCAL_PREF_PROVIDER
        assert LOCAL_PREF_CUSTOMER > LOCAL_PREF_PEER > LOCAL_PREF_PROVIDER

    def test_upstream_tag_stripped_before_reclassifying(self):
        # A route arriving already tagged (the neighbour's own marker)
        # must be re-classified, never accumulate tags.
        arriving = attrs(communities=(TAG_CUSTOMER, 0xDEADBEEF))
        accepted = import_policy(Relationship.PROVIDER).apply(PREFIX, arriving)
        assert accepted.communities == (TAG_PROVIDER,)

    def test_fresh_policy_instance_per_call(self):
        # The evaluation counter feeds the CPU cost model and is
        # per-instance; sharing one Policy across peers would corrupt it.
        assert import_policy(Relationship.PEER) is not import_policy(Relationship.PEER)


class TestExportPolicy:
    def test_customer_gets_everything(self):
        policy = export_policy(Relationship.CUSTOMER)
        for tag in (TAG_CUSTOMER, TAG_PEER, TAG_PROVIDER):
            assert policy.apply(PREFIX, attrs(communities=(tag,))) is not None
        assert policy.apply(PREFIX, attrs()) is not None  # locally originated

    def test_peer_and_provider_get_customer_routes_only(self):
        for relationship in (Relationship.PEER, Relationship.PROVIDER):
            policy = export_policy(relationship)
            assert policy.apply(PREFIX, attrs(communities=(TAG_CUSTOMER,))) is not None
            assert policy.apply(PREFIX, attrs()) is not None  # locally originated
            assert policy.apply(PREFIX, attrs(communities=(TAG_PEER,))) is None
            assert policy.apply(PREFIX, attrs(communities=(TAG_PROVIDER,))) is None
