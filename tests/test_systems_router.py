"""Unit tests for the simulated router systems."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.messages import UpdateMessage
from repro.bgp.policy import ACCEPT_ALL
from repro.bgp.speaker import PeerConfig
from repro.net.addr import IPv4Address, Prefix
from repro.systems import build_system

S1 = "speaker1"
S1_AS = 65101
S1_ADDR = IPv4Address.parse("10.255.1.1")
S1_ID = IPv4Address.parse("10.255.1.1")


def announce_packet(prefixes, path=(S1_AS, 300)):
    attrs = PathAttributes(as_path=AsPath.from_asns(list(path)), next_hop=S1_ADDR)
    return UpdateMessage(attributes=attrs, nlri=tuple(prefixes)).encode()


def with_peer(router):
    router.add_peer(PeerConfig(S1, S1_AS, S1_ADDR, ACCEPT_ALL, ACCEPT_ALL))
    router.handshake(S1, S1_AS, S1_ID)
    router.reset_counters()
    return router


class TestXorpRouterChain:
    def test_single_packet_charges_time(self):
        router = with_peer(build_system("pentium3"))
        router.deliver(S1, announce_packet([Prefix.parse("192.0.2.0/24")]))
        end = router.run_until_idle()
        assert router.transactions_completed == 1
        # Scenario-1-like per-prefix time ~5.3 ms on the Pentium III.
        assert 0.004 < end < 0.007
        assert len(router.fib) == 1

    def test_functional_state_correct(self):
        router = with_peer(build_system("pentium3"))
        p1, p2 = Prefix.parse("192.0.2.0/24"), Prefix.parse("198.51.100.0/24")
        router.deliver(S1, announce_packet([p1, p2]))
        router.run_until_idle()
        assert router.fib.next_hop_for(p1) == router.speaker.config.local_address or \
            router.fib.next_hop_for(p1) == S1_ADDR
        assert len(router.speaker.loc_rib) == 2

    def test_faster_platform_finishes_sooner(self):
        times = {}
        for platform in ("pentium3", "xeon", "ixp2400"):
            router = with_peer(build_system(platform))
            for i in range(20):
                router.deliver(S1, announce_packet([Prefix.parse(f"10.{i}.0.0/16")]))
            times[platform] = router.run_until_idle()
        assert times["xeon"] < times["pentium3"] < times["ixp2400"]

    def test_transactions_counted_per_prefix(self):
        router = with_peer(build_system("pentium3"))
        prefixes = [Prefix.parse(f"10.{i}.0.0/16") for i in range(7)]
        router.deliver(S1, announce_packet(prefixes))
        router.run_until_idle()
        assert router.transactions_completed == 7
        assert router.packets_completed == 1

    def test_on_packet_done_hook(self):
        router = with_peer(build_system("pentium3"))
        calls = []
        router.on_packet_done = lambda: calls.append(router.now)
        router.deliver(S1, announce_packet([Prefix.parse("192.0.2.0/24")]))
        router.run_until_idle()
        assert len(calls) == 1

    def test_empty_rib_guard_state(self):
        router = build_system("pentium3")
        assert len(router.speaker.loc_rib) == 0

    def test_reset_counters(self):
        router = with_peer(build_system("pentium3"))
        router.deliver(S1, announce_packet([Prefix.parse("192.0.2.0/24")]))
        router.run_until_idle()
        router.reset_counters()
        assert router.transactions_completed == 0
        assert router.speaker.work.transactions == 0


class TestCrossTraffic:
    def test_cross_traffic_slows_pentium3(self):
        def run_with(mbps):
            router = with_peer(build_system("pentium3"))
            router.set_cross_traffic(mbps)
            for i in range(10):
                router.deliver(S1, announce_packet([Prefix.parse(f"10.{i}.0.0/16")]))
            return router.run_until_idle()

        assert run_with(300.0) > 1.2 * run_with(0.0)

    def test_cross_traffic_does_not_slow_ixp(self):
        def run_with(mbps):
            router = with_peer(build_system("ixp2400"))
            router.set_cross_traffic(mbps)
            for i in range(5):
                router.deliver(S1, announce_packet([Prefix.parse(f"10.{i}.0.0/16")]))
            return router.run_until_idle()

        assert run_with(900.0) == pytest.approx(run_with(0.0), rel=0.02)

    def test_offered_rate_clamped_to_platform_max(self):
        router = build_system("pentium3")
        router.set_cross_traffic(10_000.0)
        assert router.cross_traffic_mbps == 315.0

    def test_forwarding_monitor_reports_rate(self):
        router = with_peer(build_system("pentium3"))
        router.set_cross_traffic(100.0)
        router.deliver(S1, announce_packet([Prefix.parse("192.0.2.0/24")]))
        router.run_until_idle(extra=2.0)
        series = router.forwarding_monitor.series()
        assert series
        assert series[-1][1] == pytest.approx(100.0, rel=0.1)


class TestCiscoRouter:
    def test_pacing_dominates_small_packets(self):
        router = with_peer(build_system("cisco"))
        for i in range(5):
            router.deliver(S1, announce_packet([Prefix.parse(f"10.{i}.0.0/16")]))
        end = router.run_until_idle()
        # Releases are gated one pacing interval apart, the first at t=0:
        # the last of 5 packets starts at 4 intervals and finishes after
        # its (tiny) CPU work.
        pacing = router.costs.pacing_interval
        assert end == pytest.approx(4 * pacing, rel=0.05)

    def test_work_dominates_large_packets(self):
        router = with_peer(build_system("cisco"))
        prefixes = [Prefix.parse(f"10.{i // 250}.{i % 250}.0/24") for i in range(500)]
        router.deliver(S1, announce_packet(prefixes))
        end = router.run_until_idle()
        expected = 500 * (router.costs.prefix_announce + router.costs.fib_add)
        assert end == pytest.approx(max(expected, router.costs.pacing_interval), rel=0.05)

    def test_cross_traffic_slows_large_but_not_pacing(self):
        def run(mbps, n_prefixes):
            router = with_peer(build_system("cisco"))
            router.set_cross_traffic(mbps)
            if n_prefixes == 1:
                for i in range(3):
                    router.deliver(S1, announce_packet([Prefix.parse(f"10.{i}.0.0/16")]))
            else:
                prefixes = [Prefix.parse(f"10.{i // 250}.{i % 250}.0/24") for i in range(n_prefixes)]
                router.deliver(S1, announce_packet(prefixes))
            return router.run_until_idle()

        # Small packets: pacing-bound, nearly unaffected by cross-traffic.
        assert run(78.0, 1) == pytest.approx(run(0.0, 1), rel=0.10)
        # Large packets: CPU-bound, much slower under cross-traffic.
        assert run(78.0, 500) > 3 * run(0.0, 500)

    def test_functional_processing_identical_to_xorp(self):
        p = Prefix.parse("192.0.2.0/24")
        cisco = with_peer(build_system("cisco"))
        cisco.deliver(S1, announce_packet([p]))
        cisco.run_until_idle()
        xorp = with_peer(build_system("pentium3"))
        xorp.deliver(S1, announce_packet([p]))
        xorp.run_until_idle()
        assert cisco.fib.next_hop_for(p) == xorp.fib.next_hop_for(p)
        assert len(cisco.speaker.loc_rib) == len(xorp.speaker.loc_rib)


class TestHandshake:
    def test_handshake_failure_raises(self):
        router = build_system("pentium3")
        router.add_peer(PeerConfig(S1, S1_AS, S1_ADDR))
        # Never start the session: handshake's OPEN arrives in IDLE.
        with pytest.raises(RuntimeError):
            router.handshake(S1, 99, S1_ID)  # wrong ASN also fails fast

    def test_initial_advertisement_charged(self):
        router = with_peer(build_system("pentium3"))
        router.deliver(S1, announce_packet([Prefix.parse("192.0.2.0/24")]))
        router.run_until_idle()
        router.add_peer(PeerConfig("speaker2", 65102, IPv4Address.parse("10.255.2.1")))
        router.handshake("speaker2", 65102, IPv4Address.parse("10.255.2.1"))
        before = router.now
        router.schedule_initial_advertisement("speaker2")
        end = router.run_until_idle()
        assert end > before  # the transfer consumed virtual time
        assert router.outboxes["speaker2"]
