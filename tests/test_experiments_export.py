"""Tests for result export and the extended CLI."""

import json

import pytest

from repro.experiments.export import save_json, to_dict
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig6 import run_fig6
from repro.experiments.runner import main
from repro.experiments.table3 import run_table3

SIZE = 200


class TestToDict:
    def test_table3(self):
        result = run_table3(table_size=SIZE)
        data = to_dict(result)
        assert data["experiment"] == "table3"
        assert data["table_size"] == SIZE
        assert set(data["measured"]) == {"pentium3", "xeon", "ixp2400", "cisco"}
        assert set(data["measured"]["xeon"]) == {str(s) for s in range(1, 9)}
        assert data["paper"]["pentium3"]["1"] == 185.2
        json.dumps(data)  # must be JSON-serialisable

    def test_fig4(self):
        data = to_dict(run_fig4(table_size=SIZE))
        assert data["experiment"] == "fig4"
        assert set(data["tps"]) == {"1", "2"}
        json.dumps(data)

    def test_fig6(self):
        data = to_dict(run_fig6(table_size=400))
        assert data["experiment"] == "fig6"
        assert "forwarding" in data
        assert 0.0 <= data["interrupt_share"] <= 1.0
        json.dumps(data)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            to_dict(object())


class TestSaveJson:
    def test_writes_file_and_creates_directories(self, tmp_path):
        result = run_fig4(table_size=SIZE)
        path = save_json(result, tmp_path / "nested" / "fig4.json")
        assert path.exists()
        loaded = json.loads(path.read_text())
        assert loaded["experiment"] == "fig4"


class TestCli:
    def test_output_dir_writes_json(self, tmp_path, capsys):
        rc = main(["fig4", "--table-size", str(SIZE),
                   "--output-dir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig4.json").exists()
        assert "[written" in capsys.readouterr().out

    def test_repeatability_command(self, capsys):
        rc = main([
            "repeatability", "--platform", "cisco", "--scenario", "2",
            "--seeds", "1", "2", "--table-size", "500",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repeatable" in out
        assert "CV" in out

    def test_stability_command(self, capsys):
        rc = main([
            "stability", "--platform", "xeon", "--rate", "100",
            "--duration", "10", "--table-size", "200",
        ])
        assert rc == 0
        assert "session holds" in capsys.readouterr().out

    def test_stability_flap_detected(self, capsys):
        rc = main([
            "stability", "--platform", "pentium3", "--rate", "1500",
            "--duration", "25", "--table-size", "400",
        ])
        assert rc == 0
        assert "SESSION FLAPS" in capsys.readouterr().out


class TestChainCli:
    def test_chain_command(self, capsys):
        rc = main([
            "chain", "--platforms", "xeon", "pentium3",
            "--table-size", "100",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "end-to-end convergence" in out
        assert "xeon" in out and "pentium3" in out

    def test_chain_requires_platforms(self):
        import pytest as _pytest
        from repro.experiments.runner import build_parser
        with _pytest.raises(SystemExit):
            build_parser().parse_args(["chain"])


class TestRemainingConverters:
    def test_fig3(self):
        from repro.experiments.fig3 import run_fig3

        data = to_dict(run_fig3(table_size=SIZE))
        assert data["experiment"] == "fig3"
        assert set(data["series"]) == {"pentium3", "xeon", "ixp2400"}
        assert data["phases"]["pentium3"][0]["phase"] == 1
        json.dumps(data)

    def test_fig5(self):
        from repro.experiments.fig5 import run_fig5

        result = run_fig5(table_size=SIZE, points=2, scenarios=(1,),
                          platforms=("pentium3",))
        data = to_dict(result)
        assert data["experiment"] == "fig5"
        curve = data["series"]["1"]["pentium3"]
        assert len(curve) == 2 and curve[0][0] == 0.0
        json.dumps(data)
