"""Unit tests for the BGP session finite-state machine."""

import pytest

from repro.bgp.errors import BgpError, CeaseSubcode, ErrorCode, UpdateSubcode, update_error
from repro.bgp.fsm import Event, SessionFsm, State
from repro.bgp.messages import (
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.net.addr import IPv4Address

LOCAL_ID = IPv4Address.parse("1.1.1.1")
PEER_ID = IPv4Address.parse("2.2.2.2")


class RecordingActions:
    """Captures FSM side effects for assertions."""

    def __init__(self):
        self.sent = []
        self.connects = 0
        self.drops = 0
        self.updates = []
        self.ups = 0
        self.downs = []

    def send(self, message):
        self.sent.append(message)

    def start_connect(self):
        self.connects += 1

    def drop_connection(self):
        self.drops += 1

    def deliver_update(self, update):
        self.updates.append(update)

    def session_up(self):
        self.ups += 1

    def session_down(self, reason):
        self.downs.append(reason)


def make_fsm(hold_time=90.0):
    actions = RecordingActions()
    fsm = SessionFsm(65000, LOCAL_ID, actions, hold_time=hold_time)
    return fsm, actions


def establish(fsm, actions, now=0.0):
    fsm.handle(Event.MANUAL_START, now=now)
    fsm.handle(Event.TCP_CONNECTED, now=now)
    fsm.handle_message(OpenMessage(65001, 90, PEER_ID), now=now)
    fsm.handle_message(KeepaliveMessage(), now=now)


class TestHappyPath:
    def test_full_handshake(self):
        fsm, actions = make_fsm()
        assert fsm.state is State.IDLE

        fsm.handle(Event.MANUAL_START)
        assert fsm.state is State.CONNECT
        assert actions.connects == 1

        fsm.handle(Event.TCP_CONNECTED)
        assert fsm.state is State.OPEN_SENT
        assert isinstance(actions.sent[0], OpenMessage)
        assert actions.sent[0].asn == 65000

        fsm.handle_message(OpenMessage(65001, 90, PEER_ID))
        assert fsm.state is State.OPEN_CONFIRM
        assert isinstance(actions.sent[1], KeepaliveMessage)

        fsm.handle_message(KeepaliveMessage())
        assert fsm.state is State.ESTABLISHED
        assert actions.ups == 1

    def test_update_delivery_in_established(self):
        fsm, actions = make_fsm()
        establish(fsm, actions)
        update = UpdateMessage()
        fsm.handle_message(update)
        assert actions.updates == [update]

    def test_hold_time_negotiated_to_minimum(self):
        fsm, actions = make_fsm(hold_time=90.0)
        fsm.handle(Event.MANUAL_START)
        fsm.handle(Event.TCP_CONNECTED)
        fsm.handle_message(OpenMessage(65001, 30, PEER_ID))
        assert fsm.timers.hold_time == 30.0
        assert fsm.timers.keepalive_time == 10.0

    def test_zero_hold_time_disables_timers(self):
        fsm, actions = make_fsm(hold_time=0.0)
        establish(fsm, actions)
        assert fsm.timers.hold_deadline is None
        assert fsm.timers.keepalive_deadline is None


class TestTimers:
    def test_hold_timer_expiry_tears_down(self):
        fsm, actions = make_fsm(hold_time=90.0)
        establish(fsm, actions, now=0.0)
        fsm.tick(100.0)
        assert fsm.state is State.IDLE
        assert actions.downs and "hold timer" in actions.downs[0]
        notification = actions.sent[-1]
        assert isinstance(notification, NotificationMessage)
        assert notification.code == ErrorCode.HOLD_TIMER_EXPIRED

    def test_keepalive_timer_sends_keepalive(self):
        fsm, actions = make_fsm(hold_time=90.0)
        establish(fsm, actions, now=0.0)
        sent_before = len(actions.sent)
        fsm.tick(31.0)  # keepalive_time = 30
        keepalives = [
            m for m in actions.sent[sent_before:] if isinstance(m, KeepaliveMessage)
        ]
        assert len(keepalives) == 1
        assert fsm.state is State.ESTABLISHED

    def test_update_rearms_hold_timer(self):
        fsm, actions = make_fsm(hold_time=90.0)
        establish(fsm, actions, now=0.0)
        fsm.handle_message(UpdateMessage(), now=50.0)
        fsm.tick(95.0)  # would have expired without the update
        assert fsm.state is State.ESTABLISHED

    def test_connect_retry(self):
        fsm, actions = make_fsm()
        fsm.handle(Event.MANUAL_START, now=0.0)
        fsm.handle(Event.TCP_FAILED, now=1.0)
        assert fsm.state is State.ACTIVE
        fsm.tick(200.0)
        assert fsm.state is State.CONNECT
        assert actions.connects == 2


class TestTeardown:
    def test_notification_received(self):
        fsm, actions = make_fsm()
        establish(fsm, actions)
        fsm.handle_message(NotificationMessage(ErrorCode.CEASE, 2))
        assert fsm.state is State.IDLE
        assert actions.downs

    def test_manual_stop_sends_cease(self):
        fsm, actions = make_fsm()
        establish(fsm, actions)
        fsm.handle(Event.MANUAL_STOP)
        assert fsm.state is State.IDLE
        cease = actions.sent[-1]
        assert isinstance(cease, NotificationMessage)
        assert cease.code == ErrorCode.CEASE
        assert cease.subcode == CeaseSubcode.ADMINISTRATIVE_SHUTDOWN

    def test_tcp_failure_in_established(self):
        fsm, actions = make_fsm()
        establish(fsm, actions)
        fsm.handle(Event.TCP_FAILED)
        assert fsm.state is State.IDLE
        assert actions.downs == ["transport failed"]

    def test_notify_and_close_on_protocol_error(self):
        fsm, actions = make_fsm()
        establish(fsm, actions)
        error = update_error(UpdateSubcode.MALFORMED_ATTRIBUTE_LIST, message="bad")
        fsm.notify_and_close(error)
        assert fsm.state is State.IDLE
        notification = actions.sent[-1]
        assert notification.code == ErrorCode.UPDATE_MESSAGE_ERROR

    def test_connect_retry_counter_increments(self):
        fsm, actions = make_fsm()
        establish(fsm, actions)
        assert fsm.connect_retry_counter == 0
        fsm.handle(Event.TCP_FAILED)
        assert fsm.connect_retry_counter == 1


class TestFsmErrors:
    def test_unexpected_update_in_open_sent(self):
        fsm, actions = make_fsm()
        fsm.handle(Event.MANUAL_START)
        fsm.handle(Event.TCP_CONNECTED)
        fsm.handle_message(UpdateMessage())
        assert fsm.state is State.IDLE
        notification = actions.sent[-1]
        assert notification.code == ErrorCode.FSM_ERROR

    def test_stale_timer_noise_ignored(self):
        fsm, actions = make_fsm()
        establish(fsm, actions)
        fsm.handle(Event.CONNECT_RETRY_EXPIRES)
        assert fsm.state is State.ESTABLISHED

    def test_manual_start_in_established_ignored(self):
        fsm, actions = make_fsm()
        establish(fsm, actions)
        fsm.handle(Event.MANUAL_START)
        assert fsm.state is State.ESTABLISHED

    def test_open_in_idle_is_noop(self):
        fsm, actions = make_fsm()
        fsm.handle_message(OpenMessage(65001, 90, PEER_ID))
        assert fsm.state is State.IDLE
        assert not actions.sent
